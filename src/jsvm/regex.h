// A small backtracking regular-expression engine: literals, '.', character
// classes, quantifiers (* + ?), alternation, grouping and anchors. The JIT
// configuration caches compiled patterns; the non-JIT configuration
// recompiles on every use, which is what makes "regexp" the worst SunSpider
// category without a JIT (paper Figure 5).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cycada::jsvm {

class Regex {
 public:
  static StatusOr<Regex> compile(std::string_view pattern);

  // True if the pattern matches anywhere in `text`.
  bool test(std::string_view text) const;
  // Number of non-overlapping matches.
  int match_count(std::string_view text) const;

 private:
  struct Term {
    enum class Kind : std::uint8_t {
      kChar,
      kAny,
      kClass,
      kGroup,
      kAnchorStart,
      kAnchorEnd,
    };
    enum class Quant : std::uint8_t { kOne, kStar, kPlus, kOpt };

    Kind kind = Kind::kChar;
    Quant quant = Quant::kOne;
    char ch = 0;
    bool negated = false;
    std::vector<std::pair<char, char>> ranges;            // kClass
    std::vector<std::vector<Term>> alternatives;          // kGroup
  };

  Regex() = default;

  // Attempts a match starting exactly at `pos`; returns end position or -1.
  long match_here(const std::vector<Term>& seq, std::size_t term_index,
                  std::string_view text, std::size_t pos) const;
  bool term_matches_char(const Term& term, char c) const;

  std::vector<std::vector<Term>> alternatives_;  // top-level alternation
  friend class RegexParser;
};

}  // namespace cycada::jsvm
