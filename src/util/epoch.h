// Epoch-based reclamation for the copy-and-publish snapshots the lock-free
// dispatch rework (docs/DISPATCH.md) used to keep immortal: retired
// DispatchTables and old LinkerViews.
//
// Readers wrap snapshot access in an EpochReclaimer::Guard, which pins the
// global epoch in a per-thread slot. Writers retire an old snapshot with the
// epoch current at retirement; a retired object is freed only once every
// pinned epoch has advanced past its retirement stamp, so a reader that
// loaded the old pointer under its guard can never see it freed. With no
// guard held the read path is unchanged — pinning costs two fenced stores
// and is only required around snapshot *traversal*, not the wait-free
// entry_by_id dispatch path (which reads immortal entries, not tables).
//
// Slots are a fixed array; threads past the capacity fall back to a shared
// overflow count that blocks reclamation entirely while nonzero —
// conservative, never unsafe.
//
// Pins are *cached*: when the outermost Guard on a thread exits, the slot
// keeps its published epoch instead of clearing to 0. The next Guard on the
// same thread revalidates with one relaxed load of the global epoch — no
// fence — and only re-runs the publish-then-confirm protocol when the epoch
// advanced. This removes the seq_cst store/load pair from steady-state
// snapshot probes (the ~12 ns the dispatch rotating-name path regressed by
// when tables started retiring). Safety is unchanged: a standing pin at
// epoch E protects everything retired at stamp >= E, and stamps are
// monotonic, so a pin that never lapses never needs re-publication to stay
// safe — only to let the floor advance. Cached (inactive) pins are released
// by the owning thread at thread exit, by retire()/try_reclaim() for the
// calling thread, and explicitly via release_cached_pin(), so an idle
// thread's stale pin cannot stall reclamation driven from active threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/lock_order.h"

namespace cycada::util {

namespace detail {
// Per-thread pin state. The slot pointer survives for the thread's
// lifetime. `published` mirrors the epoch the slot currently holds
// (0 = none): it may stay nonzero between guards — a *cached* pin — so
// the next guard can revalidate with one relaxed load instead of the
// publish-then-confirm fence.
//
// Deliberately trivially destructible and constinit: that lets the
// compiler reach it with a direct TLS access instead of the lazy-init
// wrapper a thread_local with a destructor requires — the wrapper call
// alone costs more than the whole Guard fast path. Slot hand-back at
// thread exit is done by a separate janitor thread_local (epoch.cpp),
// registered only on the slow path when a slot is first acquired.
struct EpochThreadPin {
  void* slot = nullptr;
  std::atomic<const void*>* owner = nullptr;
  std::atomic<std::uint64_t>* slot_epoch = nullptr;
  std::uint64_t published = 0;
  bool overflow = false;
  int depth = 0;
};
inline constinit thread_local EpochThreadPin t_epoch_pin{};
}  // namespace detail

class EpochReclaimer {
 public:
  static EpochReclaimer& instance();

  // RAII epoch pin. Reentrant per thread (inner guards are free). The
  // outermost guard leaves the slot's pin *published* on exit; re-entering
  // while the global epoch is unchanged costs one relaxed load. Both paths
  // are defined inline here — the whole steady-state cost is a TLS access,
  // a depth bump and that relaxed load, cheap enough for the dispatch
  // rotating-name probe path (the out-of-line pin()/unpin() calls only
  // happen when the epoch moved, on first use, or for overflow pins).
  class Guard {
   public:
    Guard() {
      detail::EpochThreadPin& pin = detail::t_epoch_pin;
      if (pin.depth++ != 0) return;
      if (pin.published != 0 &&
          global_epoch_.load(std::memory_order_relaxed) == pin.published) {
        return;  // cached pin still current: nothing to publish
      }
      instance().pin();
    }
    ~Guard() {
      detail::EpochThreadPin& pin = detail::t_epoch_pin;
      // Slot pins stay published (cached); only overflow pins must be
      // released eagerly, since they block reclamation outright.
      if (--pin.depth == 0 && pin.overflow) instance().unpin();
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
  };

  // Hands `ptr` to the reclaimer, stamped with the current epoch (which is
  // advanced by the call). The deleter runs once no reader pins an epoch at
  // or before the stamp. Publish the replacement snapshot *before* retiring
  // the old one.
  void retire(void* ptr, void (*deleter)(void*));
  template <typename T>
  void retire(const T* ptr) {
    retire(const_cast<T*>(ptr), [](void* p) { delete static_cast<T*>(p); });
  }

  // Frees every retired object whose stamp has drained; returns how many.
  // Also called automatically when the retired list crosses a threshold.
  std::size_t try_reclaim();

  // Drops the calling thread's cached (inactive) pin so it no longer holds
  // the reclamation floor. No-op while a Guard is live on this thread, or
  // when nothing is cached. retire()/try_reclaim() call this for their own
  // thread; long-lived threads that stop touching snapshots may call it at
  // quiescent points.
  void release_cached_pin();

  std::size_t retired_count() const;        // currently awaiting reclamation
  std::uint64_t reclaimed_total() const;    // freed since process start
  std::uint64_t epoch() const;

 private:
  EpochReclaimer() = default;

  struct RetiredItem {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t stamp;
  };

  static constexpr std::size_t kSlots = 128;
  static constexpr std::size_t kReclaimThreshold = 64;

  struct alignas(64) PinSlot {
    std::atomic<std::uint64_t> epoch{0};   // 0 = not pinned
    std::atomic<const void*> owner{nullptr};
  };

  friend class Guard;
  PinSlot* acquire_slot();
  void pin();
  void unpin();

  inline static std::atomic<std::uint64_t> global_epoch_{1};
  PinSlot slots_[kSlots];
  std::atomic<std::uint64_t> overflow_pins_{0};
  std::atomic<std::uint64_t> reclaimed_total_{0};
  std::atomic<std::size_t> retired_count_{0};

  mutable OrderedMutex mutex_{LockLevel::kEpoch, "util.epoch-retired"};
  // Guarded by mutex_; a plain grow/compact vector is fine at the retire
  // rate (one per snapshot republication).
  std::vector<RetiredItem> retired_;
};

}  // namespace cycada::util
