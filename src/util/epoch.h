// Epoch-based reclamation for the copy-and-publish snapshots the lock-free
// dispatch rework (docs/DISPATCH.md) used to keep immortal: retired
// DispatchTables and old LinkerViews.
//
// Readers wrap snapshot access in an EpochReclaimer::Guard, which pins the
// global epoch in a per-thread slot. Writers retire an old snapshot with the
// epoch current at retirement; a retired object is freed only once every
// pinned epoch has advanced past its retirement stamp, so a reader that
// loaded the old pointer under its guard can never see it freed. With no
// guard held the read path is unchanged — pinning costs two fenced stores
// and is only required around snapshot *traversal*, not the wait-free
// entry_by_id dispatch path (which reads immortal entries, not tables).
//
// Slots are a fixed array; threads past the capacity fall back to a shared
// overflow count that blocks reclamation entirely while nonzero —
// conservative, never unsafe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/lock_order.h"

namespace cycada::util {

class EpochReclaimer {
 public:
  static EpochReclaimer& instance();

  // RAII epoch pin. Reentrant per thread (inner guards are free); cheap
  // enough for per-snapshot-read use but not meant for the dispatch path.
  class Guard {
   public:
    Guard();
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
  };

  // Hands `ptr` to the reclaimer, stamped with the current epoch (which is
  // advanced by the call). The deleter runs once no reader pins an epoch at
  // or before the stamp. Publish the replacement snapshot *before* retiring
  // the old one.
  void retire(void* ptr, void (*deleter)(void*));
  template <typename T>
  void retire(const T* ptr) {
    retire(const_cast<T*>(ptr), [](void* p) { delete static_cast<T*>(p); });
  }

  // Frees every retired object whose stamp has drained; returns how many.
  // Also called automatically when the retired list crosses a threshold.
  std::size_t try_reclaim();

  std::size_t retired_count() const;        // currently awaiting reclamation
  std::uint64_t reclaimed_total() const;    // freed since process start
  std::uint64_t epoch() const;

 private:
  EpochReclaimer() = default;

  struct RetiredItem {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t stamp;
  };

  static constexpr std::size_t kSlots = 128;
  static constexpr std::size_t kReclaimThreshold = 64;

  struct alignas(64) PinSlot {
    std::atomic<std::uint64_t> epoch{0};   // 0 = not pinned
    std::atomic<const void*> owner{nullptr};
  };

  friend class Guard;
  PinSlot* acquire_slot();
  void pin();
  void unpin();

  std::atomic<std::uint64_t> global_epoch_{1};
  PinSlot slots_[kSlots];
  std::atomic<std::uint64_t> overflow_pins_{0};
  std::atomic<std::uint64_t> reclaimed_total_{0};
  std::atomic<std::size_t> retired_count_{0};

  mutable OrderedMutex mutex_{LockLevel::kEpoch, "util.epoch-retired"};
  // Guarded by mutex_; a plain grow/compact vector is fine at the retire
  // rate (one per snapshot republication).
  std::vector<RetiredItem> retired_;
};

}  // namespace cycada::util
