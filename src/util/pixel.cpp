#include "util/pixel.h"

namespace cycada {

const char* pixel_format_name(PixelFormat format) {
  switch (format) {
    case PixelFormat::kRgba8888: return "RGBA8888";
    case PixelFormat::kRgbx8888: return "RGBX8888";
    case PixelFormat::kRgb565: return "RGB565";
    case PixelFormat::kAlpha8: return "ALPHA8";
    case PixelFormat::kLuminance8: return "LUMINANCE8";
  }
  return "UNKNOWN";
}

std::uint32_t pack_rgba8888(Color c) {
  const auto to8 = [](float v) {
    return static_cast<std::uint32_t>(clamp01(v) * 255.f + 0.5f);
  };
  return to8(c.r) | (to8(c.g) << 8) | (to8(c.b) << 16) | (to8(c.a) << 24);
}

Color unpack_rgba8888(std::uint32_t packed) {
  constexpr float kInv = 1.f / 255.f;
  return {
      static_cast<float>(packed & 0xff) * kInv,
      static_cast<float>((packed >> 8) & 0xff) * kInv,
      static_cast<float>((packed >> 16) & 0xff) * kInv,
      static_cast<float>((packed >> 24) & 0xff) * kInv,
  };
}

std::uint16_t pack_rgb565(Color c) {
  const auto r = static_cast<std::uint16_t>(clamp01(c.r) * 31.f + 0.5f);
  const auto g = static_cast<std::uint16_t>(clamp01(c.g) * 63.f + 0.5f);
  const auto b = static_cast<std::uint16_t>(clamp01(c.b) * 31.f + 0.5f);
  return static_cast<std::uint16_t>((r << 11) | (g << 5) | b);
}

Color unpack_rgb565(std::uint16_t packed) {
  return {
      static_cast<float>((packed >> 11) & 0x1f) / 31.f,
      static_cast<float>((packed >> 5) & 0x3f) / 63.f,
      static_cast<float>(packed & 0x1f) / 31.f,
      1.f,
  };
}

}  // namespace cycada
