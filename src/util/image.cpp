#include "util/image.h"

#include <cstdio>
#include <cstdlib>

namespace cycada {

std::size_t Image::diff_count(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return static_cast<std::size_t>(a.width()) * a.height();
  }
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.pixels_.size(); ++i) {
    if (a.pixels_[i] != b.pixels_[i]) ++diffs;
  }
  return diffs;
}

int Image::max_channel_delta(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) return 255;
  int max_delta = 0;
  for (std::size_t i = 0; i < a.pixels_.size(); ++i) {
    const std::uint32_t pa = a.pixels_[i];
    const std::uint32_t pb = b.pixels_[i];
    for (int shift = 0; shift < 32; shift += 8) {
      const int ca = static_cast<int>((pa >> shift) & 0xff);
      const int cb = static_cast<int>((pb >> shift) & 0xff);
      max_delta = std::max(max_delta, std::abs(ca - cb));
    }
  }
  return max_delta;
}

bool Image::write_ppm(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  std::fprintf(file, "P6\n%d %d\n255\n", width_, height_);
  for (std::uint32_t pixel : pixels_) {
    const unsigned char rgb[3] = {
        static_cast<unsigned char>(pixel & 0xff),
        static_cast<unsigned char>((pixel >> 8) & 0xff),
        static_cast<unsigned char>((pixel >> 16) & 0xff),
    };
    std::fwrite(rgb, 1, 3, file);
  }
  const bool ok = std::fclose(file) == 0;
  return ok;
}

}  // namespace cycada
