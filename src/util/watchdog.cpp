#include "util/watchdog.h"

#include <cstdlib>

#include "core/session.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "util/clock.h"
#include "util/log.h"

namespace cycada::util {

namespace {

constexpr std::int64_t kMonitorPeriodMs = 2;

static_assert(static_cast<int>(WatchdogDomain::kCount) <=
                  core::WatchdogLadder::kMaxDomains,
              "WatchdogLadder is sized without including watchdog.h");

// The ladder the calling thread's stalls and frames land on. Never null:
// every session (the default included) acquires a pooled ladder at
// construction.
core::WatchdogLadder& current_ladder() {
  return *core::Session::current().watchdog_ladder();
}

std::string domain_metric(const char* domain, const char* suffix) {
  return std::string("watchdog.") + domain + suffix;
}

}  // namespace

const char* watchdog_domain_name(WatchdogDomain domain) {
  switch (domain) {
    case WatchdogDomain::kGpuPhase: return "gpu_phase";
    case WatchdogDomain::kPresent: return "present";
    case WatchdogDomain::kBatch: return "batch";
    case WatchdogDomain::kCrossing: return "crossing";
    case WatchdogDomain::kEgl: return "egl";
    case WatchdogDomain::kCompositor: return "compositor";
    case WatchdogDomain::kCount: break;
  }
  return "?";
}

Watchdog& Watchdog::instance() {
  // Immortal, like every other process-wide registry: the monitor thread
  // and late-exiting worker threads may touch it during teardown.
  static Watchdog* watchdog = new Watchdog();
  return *watchdog;
}

Watchdog::Watchdog() {
  if (const char* env = std::getenv("CYCADA_WATCHDOG");
      env != nullptr && env[0] == '0' && env[1] == '\0') {
    enabled_.store(false, std::memory_order_relaxed);
  }
  if (const char* env = std::getenv("CYCADA_WATCHDOG_BUDGET_MS");
      env != nullptr && *env != '\0') {
    const long long ms = std::atoll(env);
    if (ms > 0) budget_override_ms_.store(ms, std::memory_order_relaxed);
  }
  // Metrics are cached up front so neither the monitor thread nor a scope
  // destructor ever takes the metrics lock (counter objects are immortal
  // and survive MetricsRegistry::reset()).
  auto& metrics = trace::MetricsRegistry::instance();
  for (int i = 0; i < static_cast<int>(WatchdogDomain::kCount); ++i) {
    const char* name = watchdog_domain_name(static_cast<WatchdogDomain>(i));
    domains_[i].overdue_metric =
        &metrics.counter(domain_metric(name, ".overdue"));
    domains_[i].stall_histogram =
        &metrics.histogram(domain_metric(name, ".stall_ns"));
  }
  rung_up_metric_ = &metrics.counter("watchdog.rung_up");
  rung_down_metric_ = &metrics.counter("watchdog.rung_down");
}

void Watchdog::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Watchdog::set_budget_override_ms(std::int64_t ms) {
  budget_override_ms_.store(ms > 0 ? ms : 0, std::memory_order_relaxed);
}

void Watchdog::set_recovery_frames(int frames) {
  recovery_frames_.store(frames > 0 ? frames : 1, std::memory_order_relaxed);
}

int Watchdog::rung(WatchdogDomain domain) const {
  return current_ladder()
      .domains[static_cast<int>(domain)]
      .rung.load(std::memory_order_relaxed);
}

void Watchdog::note_stall(WatchdogDomain domain) {
  note_stall_on(current_ladder(), domain);
}

void Watchdog::note_stall_on(core::WatchdogLadder& ladder,
                             WatchdogDomain domain) {
  auto& state = ladder.domains[static_cast<int>(domain)];
  state.stalled_since_frame.store(true, std::memory_order_relaxed);
  state.clean_streak.store(0, std::memory_order_relaxed);
  const int rung = state.rung.fetch_add(1, std::memory_order_relaxed) + 1;
  if (rung > kMaxRung) {
    state.rung.store(kMaxRung, std::memory_order_relaxed);
  } else {
    rung_up_metric_->add();
    TRACE_INSTANT("watchdog", "rung-up");
  }
}

void Watchdog::note_frame() {
  const int recovery = recovery_frames();
  core::WatchdogLadder& ladder = current_ladder();
  for (int i = 0; i < static_cast<int>(WatchdogDomain::kCount); ++i) {
    auto& state = ladder.domains[i];
    if (state.stalled_since_frame.exchange(false,
                                           std::memory_order_relaxed)) {
      state.clean_streak.store(0, std::memory_order_relaxed);
      continue;
    }
    if (state.rung.load(std::memory_order_relaxed) == 0) continue;
    const int streak =
        state.clean_streak.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak < recovery) continue;
    state.clean_streak.store(0, std::memory_order_relaxed);
    // Probe one rung back up; a fresh stall at the lower rung re-raises it.
    int rung = state.rung.load(std::memory_order_relaxed);
    while (rung > 0 &&
           !state.rung.compare_exchange_weak(rung, rung - 1,
                                             std::memory_order_relaxed)) {
    }
    if (rung > 0) {
      rung_down_metric_->add();
      TRACE_INSTANT("watchdog", "rung-down");
    }
  }
}

void Watchdog::reset() {
  // Every live session's ladder, not just the caller's: tests that wedge a
  // fleet session and then reset must not leave a stranger degraded.
  for (core::Session* session :
       core::SessionRegistry::instance().live_sessions()) {
    session->watchdog_ladder()->reset();
  }
}

watchdog_detail::ThreadSlots& Watchdog::thread_slots() {
  struct Holder {
    watchdog_detail::ThreadSlots* slots = nullptr;
    ~Holder() {
      if (slots != nullptr) {
        slots->depth.store(0, std::memory_order_relaxed);
        slots->in_use.store(false, std::memory_order_release);
      }
    }
  };
  thread_local Holder holder;
  if (holder.slots == nullptr) {
    std::lock_guard lock(threads_mutex_);
    for (auto* existing : threads_) {
      bool free = false;
      if (existing->in_use.compare_exchange_strong(
              free, true, std::memory_order_acquire)) {
        // CAS succeeds only on a parked block left by an exited thread.
        holder.slots = existing;
        break;
      }
    }
    if (holder.slots == nullptr) {
      holder.slots = new watchdog_detail::ThreadSlots();
      holder.slots->in_use.store(true, std::memory_order_relaxed);
      threads_.push_back(holder.slots);
    }
  }
  return *holder.slots;
}

bool Watchdog::claim_overdue(watchdog_detail::ThreadSlots::Slot& slot,
                             std::uint64_t serial) {
  return slot.flagged_serial.exchange(serial, std::memory_order_acq_rel) ==
         serial;
}

void Watchdog::count_overdue(WatchdogDomain domain,
                             core::WatchdogLadder* ladder,
                             std::int64_t stall_ns) {
  DomainState& state = domains_[static_cast<int>(domain)];
  state.overdue_metric->add();
  if (stall_ns > 0) state.stall_histogram->record(stall_ns);
  TRACE_INSTANT("watchdog", watchdog_domain_name(domain));
  note_stall_on(ladder != nullptr ? *ladder : current_ladder(), domain);
}

void Watchdog::count_stall_latency(WatchdogDomain domain,
                                   std::int64_t stall_ns) {
  if (stall_ns > 0) {
    domains_[static_cast<int>(domain)].stall_histogram->record(stall_ns);
  }
}

void Watchdog::ensure_monitor_started() {
  if (monitor_started_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(monitor_lifecycle_mutex_);
  if (monitor_started_.load(std::memory_order_relaxed)) return;
  monitor_stop_.store(false, std::memory_order_relaxed);
  monitor_ = std::thread([this] { monitor_main(); });
  // Joined (not detached) at exit: a detached scanner could touch trace
  // buffers mid-static-destruction.
  std::atexit(&Watchdog::atexit_hook);
  monitor_started_.store(true, std::memory_order_release);
}

void Watchdog::atexit_hook() { instance().stop_monitor(); }

void Watchdog::stop_monitor() {
  std::lock_guard lock(monitor_lifecycle_mutex_);
  if (!monitor_started_.load(std::memory_order_relaxed)) return;
  monitor_stop_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  monitor_started_.store(false, std::memory_order_release);
}

void Watchdog::monitor_main() {
  while (!monitor_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kMonitorPeriodMs));
    if (!enabled()) continue;
    const std::int64_t now = now_ns();
    std::lock_guard lock(threads_mutex_);
    for (auto* thread_slots : threads_) {
      if (!thread_slots->in_use.load(std::memory_order_acquire)) continue;
      const int depth = thread_slots->depth.load(std::memory_order_acquire);
      for (int i = 0; i < depth && i < watchdog_detail::ThreadSlots::kMaxDepth;
           ++i) {
        auto& slot = thread_slots->slots[i];
        const std::uint64_t serial =
            slot.serial.load(std::memory_order_acquire);
        const std::int64_t deadline =
            slot.deadline_ns.load(std::memory_order_relaxed);
        if (deadline == 0 || now <= deadline) continue;
        if (claim_overdue(slot, serial)) continue;  // already escalated
        const auto domain = static_cast<WatchdogDomain>(
            slot.domain.load(std::memory_order_relaxed));
        count_overdue(domain, slot.ladder.load(std::memory_order_relaxed),
                      now - slot.enter_ns.load(std::memory_order_relaxed));
        CYCADA_LOG(kWarn) << "watchdog: " << watchdog_domain_name(domain)
                          << " scope overdue ("
                          << (now - slot.enter_ns.load(
                                        std::memory_order_relaxed)) /
                                 1000000
                          << "ms elapsed)";
      }
    }
  }
}

WatchdogScope::WatchdogScope(WatchdogDomain domain, std::int64_t budget_ms)
    : domain_(domain) {
  Watchdog& watchdog = Watchdog::instance();
  if (!watchdog.enabled()) return;
  watchdog.ensure_monitor_started();
  watchdog_detail::ThreadSlots& slots = watchdog.thread_slots();
  const int depth = slots.depth.load(std::memory_order_relaxed);
  if (depth >= watchdog_detail::ThreadSlots::kMaxDepth) return;
  enter_ns_ = now_ns();
  budget_ns_ = watchdog.effective_budget_ms(budget_ms) * 1000000;
  ladder_ = &current_ladder();
  auto& slot = slots.slots[depth];
  serial_ = slot.serial.load(std::memory_order_relaxed) + 1;
  slot.enter_ns.store(enter_ns_, std::memory_order_relaxed);
  slot.deadline_ns.store(enter_ns_ + budget_ns_, std::memory_order_relaxed);
  slot.domain.store(static_cast<int>(domain), std::memory_order_relaxed);
  slot.ladder.store(ladder_, std::memory_order_relaxed);
  slot.serial.store(serial_, std::memory_order_release);
  slots.depth.store(depth + 1, std::memory_order_release);
  slots_ = &slots;
  slot_ = &slot;
}

WatchdogScope::~WatchdogScope() {
  if (slot_ == nullptr) return;
  slots_->depth.store(slots_->depth.load(std::memory_order_relaxed) - 1,
                      std::memory_order_release);
  const std::int64_t elapsed = now_ns() - enter_ns_;
  if (elapsed <= budget_ns_) return;
  Watchdog& watchdog = Watchdog::instance();
  // The monitor may have beaten us to it; exactly one side escalates.
  // Escalate against the ladder recorded at push time: the scope may be
  // unwinding after a SessionScope inside it already rebound the thread.
  if (!watchdog.claim_overdue(*slot_, serial_)) {
    watchdog.count_overdue(domain_, ladder_, elapsed);
  } else {
    // Monitor already counted the overdue event; still record how long the
    // stall actually lasted end to end.
    watchdog.count_stall_latency(domain_, elapsed);
  }
}

bool WatchdogScope::overdue() const {
  if (slot_ == nullptr) return false;
  if (slot_->flagged_serial.load(std::memory_order_acquire) == serial_) {
    return true;
  }
  return now_ns() - enter_ns_ > budget_ns_;
}

}  // namespace cycada::util
