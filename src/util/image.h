// A CPU-side RGBA image: the type golden-image tests compare and examples
// dump to disk as PPM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/pixel.h"

namespace cycada {

class Image {
 public:
  Image() = default;
  Image(int width, int height, std::uint32_t fill = 0xff000000u)
      : width_(width),
        height_(height),
        pixels_(static_cast<std::size_t>(width) * height, fill) {}

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  std::uint32_t& at(int x, int y) {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  std::uint32_t at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  const std::vector<std::uint32_t>& pixels() const { return pixels_; }
  std::vector<std::uint32_t>& pixels() { return pixels_; }

  // Number of pixels whose packed value differs between the two images.
  // Returns the total pixel count when dimensions differ.
  static std::size_t diff_count(const Image& a, const Image& b);

  // Max per-channel absolute difference across all pixels (255 on dimension
  // mismatch); used for "visually similar" assertions.
  static int max_channel_delta(const Image& a, const Image& b);

  // Writes a binary PPM (P6) file, alpha dropped. Returns false on I/O error.
  bool write_ppm(const std::string& path) const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint32_t> pixels_;
};

}  // namespace cycada
