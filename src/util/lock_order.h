// Lock-order annotation for the persona/diplomat/linker/trace lock nests.
//
// Every long-lived mutex in src/core, src/kernel, src/linker and src/trace
// is wrapped in an OrderedMutex carrying a LockLevel: a total order in which
// locks may be nested (a thread may only acquire a level strictly greater
// than every level it already holds; recursive mutexes may re-acquire
// themselves). When recording is enabled (debug runs, cycada_check, tests)
// each acquisition appends held-level -> new-level edges to a global
// acquisition graph; `tools/cycada_check` and `analyze::check_lock_order()`
// then fail on order inversions and on cycles in the observed graph.
//
// The hot-path cost with recording off is one relaxed atomic load and a
// branch per lock/unlock, so the wrappers stay on permanently.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cycada::util {

// The total lock order, lowest acquired first. Gaps leave room for new
// subsystems. Levels, not mutex instances, are the unit of ordering: two
// distinct mutexes on the same level must never be held together.
enum class LockLevel : int {
  kDegradedEgl = 5,        // ios_gl degraded-mode serialization (outermost)
  kLinker = 10,            // linker::Linker::mutex_ (recursive: dep closure)
  kDiplomatRegistry = 20,  // core::DiplomatRegistry::mutex_
  kTlsTracker = 30,        // core::GraphicsTlsTracker::mutex_
  kKernelThreads = 40,     // kernel::Kernel::registry_mutex_
  kKernelKeys = 50,        // kernel::Kernel::keys_mutex_
  kThreadTls = 60,         // kernel::ThreadState::tls_mutex_
  kEpoch = 62,             // util::EpochReclaimer::mutex_ (retired list)
  kFaultRegistry = 64,     // util::FaultRegistry::mutex_
  kWatchdog = 66,          // util::Watchdog::threads_mutex_ (slot registry)
  kSessionRegistry = 68,   // core::SessionRegistry::mutex_ (live sessions)
  kMetrics = 70,           // trace::MetricsRegistry::mutex_
  kTracer = 80,            // trace::Tracer::mutex_
  kLogEmit = 90,           // util/log.cpp emission mutex
};

const char* lock_level_name(int level);

// Global acquisition graph: one edge per observed (held level -> acquired
// level) pair, with names and a hit count. Recording is off by default.
class LockOrderGraph {
 public:
  struct Edge {
    int from_level;
    int to_level;
    std::string from_name;
    std::string to_name;
    std::uint64_t count;
  };

  // Per-level acquisition tally (recorded alongside edges). Unlike edges —
  // which need a lock already held — every acquisition counts, so a zero
  // here proves a level was never locked during the recorded window. The
  // dispatch benches use this to verify the diplomat read path is
  // mutex-free (docs/DISPATCH.md).
  struct LevelCount {
    int level;
    std::string name;
    std::uint64_t count;
  };

  static LockOrderGraph& instance();

  void set_recording(bool enabled);
  bool recording() const;

  std::vector<Edge> edges() const;
  std::vector<LevelCount> acquisition_counts() const;
  // Acquisitions recorded for one level (0 when never acquired).
  std::uint64_t acquisitions(LockLevel level) const;
  // Annotated locks currently held across all threads (recorded
  // acquisitions minus releases). Nonzero at a quiescent point means some
  // path — e.g. an injected-fault early return — leaked a lock;
  // analyze::check_fault_safety() asserts this is zero.
  std::int64_t held_count() const;
  // Edges acquired against the static order (from_level >= to_level).
  std::vector<Edge> inversions() const;
  // Cycles among levels in the observed graph, each reported as the level
  // names along the cycle. A cycle means two threads can deadlock even if
  // no single acquisition inverted the order relative to its direct holder.
  std::vector<std::vector<std::string>> find_cycles() const;

  void reset();

 private:
  LockOrderGraph() = default;
};

namespace lock_detail {
void note_acquired(const void* mutex, int level, const char* name,
                   bool recursive);
void note_released(const void* mutex);
}  // namespace lock_detail

// A mutex annotated with its position in the total lock order. Meets
// Lockable, so std::lock_guard / std::unique_lock work unchanged.
template <typename MutexT, bool kRecursive>
class AnnotatedMutex {
 public:
  AnnotatedMutex(LockLevel level, const char* name)
      : level_(static_cast<int>(level)), name_(name) {}
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() {
    if (LockOrderGraph::instance().recording()) {
      // Record intent before blocking so an actual deadlock still leaves
      // the offending edge in the graph.
      lock_detail::note_acquired(this, level_, name_, kRecursive);
      mutex_.lock();
      return;
    }
    mutex_.lock();
  }

  bool try_lock() {
    if (!mutex_.try_lock()) return false;
    if (LockOrderGraph::instance().recording()) {
      lock_detail::note_acquired(this, level_, name_, kRecursive);
    }
    return true;
  }

  void unlock() {
    mutex_.unlock();
    lock_detail::note_released(this);
  }

  int level() const { return level_; }
  const char* name() const { return name_; }

 private:
  MutexT mutex_;
  const int level_;
  const char* const name_;
};

using OrderedMutex = AnnotatedMutex<std::mutex, false>;
using OrderedRecursiveMutex = AnnotatedMutex<std::recursive_mutex, true>;

}  // namespace cycada::util
