// Small vector / matrix math used by the software GPU, the fixed-function
// GLES1 pipeline (matrix stacks) and the GLES2 shader kernels. Column-major
// 4x4 matrices to match the OpenGL convention.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

namespace cycada {

struct Vec2 {
  float x = 0.f, y = 0.f;
};

struct Vec3 {
  float x = 0.f, y = 0.f, z = 0.f;

  friend Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend Vec3 operator*(Vec3 a, float s) { return {a.x * s, a.y * s, a.z * s}; }
};

struct Vec4 {
  float x = 0.f, y = 0.f, z = 0.f, w = 0.f;

  friend Vec4 operator+(Vec4 a, Vec4 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z, a.w + b.w};
  }
  friend Vec4 operator-(Vec4 a, Vec4 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z, a.w - b.w};
  }
  friend Vec4 operator*(Vec4 a, float s) {
    return {a.x * s, a.y * s, a.z * s, a.w * s};
  }
  friend Vec4 operator*(Vec4 a, Vec4 b) {
    return {a.x * b.x, a.y * b.y, a.z * b.z, a.w * b.w};
  }
};

inline float dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
inline Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
inline float length(Vec3 v) { return std::sqrt(dot(v, v)); }
inline Vec3 normalize(Vec3 v) {
  const float len = length(v);
  return len > 0.f ? v * (1.f / len) : v;
}

// Column-major 4x4 matrix: m[col * 4 + row], matching glLoadMatrixf layout.
struct Mat4 {
  std::array<float, 16> m{};

  static Mat4 identity() {
    Mat4 r;
    r.m[0] = r.m[5] = r.m[10] = r.m[15] = 1.f;
    return r;
  }

  float& at(std::size_t row, std::size_t col) { return m[col * 4 + row]; }
  float at(std::size_t row, std::size_t col) const { return m[col * 4 + row]; }

  friend Mat4 operator*(const Mat4& a, const Mat4& b) {
    Mat4 r;
    for (std::size_t col = 0; col < 4; ++col) {
      for (std::size_t row = 0; row < 4; ++row) {
        float sum = 0.f;
        for (std::size_t k = 0; k < 4; ++k) sum += a.at(row, k) * b.at(k, col);
        r.at(row, col) = sum;
      }
    }
    return r;
  }

  friend Vec4 operator*(const Mat4& a, Vec4 v) {
    return {
        a.m[0] * v.x + a.m[4] * v.y + a.m[8] * v.z + a.m[12] * v.w,
        a.m[1] * v.x + a.m[5] * v.y + a.m[9] * v.z + a.m[13] * v.w,
        a.m[2] * v.x + a.m[6] * v.y + a.m[10] * v.z + a.m[14] * v.w,
        a.m[3] * v.x + a.m[7] * v.y + a.m[11] * v.z + a.m[15] * v.w,
    };
  }

  static Mat4 translate(float x, float y, float z) {
    Mat4 r = identity();
    r.m[12] = x;
    r.m[13] = y;
    r.m[14] = z;
    return r;
  }

  static Mat4 scale(float x, float y, float z) {
    Mat4 r = identity();
    r.m[0] = x;
    r.m[5] = y;
    r.m[10] = z;
    return r;
  }

  // Rotation of `degrees` about the (normalized internally) axis, matching
  // glRotatef semantics.
  static Mat4 rotate(float degrees, float ax, float ay, float az) {
    const float rad = degrees * 3.14159265358979323846f / 180.f;
    const Vec3 axis = normalize({ax, ay, az});
    const float c = std::cos(rad), s = std::sin(rad), t = 1.f - c;
    Mat4 r = identity();
    r.at(0, 0) = t * axis.x * axis.x + c;
    r.at(0, 1) = t * axis.x * axis.y - s * axis.z;
    r.at(0, 2) = t * axis.x * axis.z + s * axis.y;
    r.at(1, 0) = t * axis.x * axis.y + s * axis.z;
    r.at(1, 1) = t * axis.y * axis.y + c;
    r.at(1, 2) = t * axis.y * axis.z - s * axis.x;
    r.at(2, 0) = t * axis.x * axis.z - s * axis.y;
    r.at(2, 1) = t * axis.y * axis.z + s * axis.x;
    r.at(2, 2) = t * axis.z * axis.z + c;
    return r;
  }

  static Mat4 frustum(float l, float r, float b, float t, float n, float f) {
    Mat4 out;
    out.at(0, 0) = 2.f * n / (r - l);
    out.at(0, 2) = (r + l) / (r - l);
    out.at(1, 1) = 2.f * n / (t - b);
    out.at(1, 2) = (t + b) / (t - b);
    out.at(2, 2) = -(f + n) / (f - n);
    out.at(2, 3) = -2.f * f * n / (f - n);
    out.at(3, 2) = -1.f;
    return out;
  }

  static Mat4 ortho(float l, float r, float b, float t, float n, float f) {
    Mat4 out = identity();
    out.at(0, 0) = 2.f / (r - l);
    out.at(1, 1) = 2.f / (t - b);
    out.at(2, 2) = -2.f / (f - n);
    out.at(0, 3) = -(r + l) / (r - l);
    out.at(1, 3) = -(t + b) / (t - b);
    out.at(2, 3) = -(f + n) / (f - n);
    return out;
  }

  static Mat4 perspective(float fovy_degrees, float aspect, float n, float f) {
    const float half = fovy_degrees * 3.14159265358979323846f / 360.f;
    const float top = n * std::tan(half);
    const float right = top * aspect;
    return frustum(-right, right, -top, top, n, f);
  }
};

}  // namespace cycada
