#include "util/faultpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "core/session.h"
#include "trace/metrics.h"
#include "util/log.h"

namespace cycada::util {

namespace {

// SplitMix64 step on shared atomic state: fetch_add hands every concurrent
// evaluator a distinct stream position, so the fire sequence is a
// deterministic function of (seed, traversal order) with no lock.
std::uint64_t splitmix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// -1 = no filter (faults apply to every session). See
// FaultRegistry::set_session_filter.
std::atomic<std::int64_t> g_session_filter{-1};

// True when the calling thread's session is targeted by the filter (or no
// filter is set). Off the disarmed fast path: only armed traversals pay the
// session lookup.
bool session_targeted() {
  const std::int64_t filter = g_session_filter.load(std::memory_order_relaxed);
  if (filter < 0) return true;
  return static_cast<std::int64_t>(core::Session::current().id()) == filter;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

}  // namespace

const char* fault_trigger_name(FaultTrigger trigger) {
  switch (trigger) {
    case FaultTrigger::kDisarmed: return "disarmed";
    case FaultTrigger::kOnce: return "once";
    case FaultTrigger::kEveryNth: return "every-nth";
    case FaultTrigger::kProbability: return "probability";
  }
  return "?";
}

FaultPoint::FaultPoint(std::string name)
    : name_(std::move(name)),
      hits_metric_(&trace::MetricsRegistry::instance().counter(
          "fault." + name_ + ".hits")),
      fires_metric_(&trace::MetricsRegistry::instance().counter(
          "fault." + name_ + ".fires")),
      stalls_metric_(&trace::MetricsRegistry::instance().counter(
          "fault." + name_ + ".stalls")) {}

void FaultPoint::arm_once(std::uint64_t nth) {
  param_.store(nth == 0 ? 1 : nth, std::memory_order_relaxed);
  trigger_.store(static_cast<int>(FaultTrigger::kOnce),
                 std::memory_order_release);
}

void FaultPoint::arm_every(std::uint64_t n) {
  param_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  trigger_.store(static_cast<int>(FaultTrigger::kEveryNth),
                 std::memory_order_release);
}

void FaultPoint::arm_probability(std::uint32_t ppm, std::uint64_t seed) {
  param_.store(ppm > 1000000 ? 1000000 : ppm, std::memory_order_relaxed);
  rng_state_.store(seed, std::memory_order_relaxed);
  trigger_.store(static_cast<int>(FaultTrigger::kProbability),
                 std::memory_order_release);
}

void FaultPoint::arm_stall(std::uint64_t ms, std::uint64_t every_nth) {
  stall_every_.store(every_nth == 0 ? 1 : every_nth,
                     std::memory_order_relaxed);
  stall_ms_.store(ms, std::memory_order_release);
}

void FaultPoint::disarm_stall() {
  stall_ms_.store(0, std::memory_order_release);
}

void FaultPoint::disarm() {
  trigger_.store(static_cast<int>(FaultTrigger::kDisarmed),
                 std::memory_order_release);
  disarm_stall();
}

void FaultPoint::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
  stall_hits_.store(0, std::memory_order_relaxed);
  stalls_.store(0, std::memory_order_relaxed);
}

void FaultPoint::maybe_stall() {
  // The stall channel honors suppression exactly like the fire channel:
  // a recovery rung must not be delayable any more than it is failable.
  if (FaultSuppressionScope::active()) return;
  const std::uint64_t ms = stall_ms_.load(std::memory_order_relaxed);
  if (ms == 0) return;
  if (!session_targeted()) return;
  const std::uint64_t hit =
      stall_hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t every = stall_every_.load(std::memory_order_relaxed);
  if (hit % (every == 0 ? 1 : every) != 0) return;
  stalls_.fetch_add(1, std::memory_order_relaxed);
  stalls_metric_->add();
  // A bounded sleep, not a true hang: the injected delay just has to
  // overrun a watchdog budget, and tests must still terminate.
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

thread_local int FaultSuppressionScope::t_depth = 0;

bool FaultPoint::evaluate() {
  // Degraded-mode recovery rungs run fault-free (and untallied): a
  // suppressed traversal never happened as far as triggers are concerned.
  if (FaultSuppressionScope::active()) return false;
  // A filtered-out session traverses armed probes as if disarmed: no hit,
  // no fire, so the targeted session's deterministic trigger sequence is
  // independent of its neighbors' traffic.
  if (!session_targeted()) return false;
  // Arming between the fast-path check and here just means this traversal
  // counts against the new trigger; rearm races are benign by design.
  const std::uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  hits_metric_->add();
  const std::uint64_t param = param_.load(std::memory_order_relaxed);
  bool fire = false;
  switch (static_cast<FaultTrigger>(trigger_.load(std::memory_order_relaxed))) {
    case FaultTrigger::kDisarmed:
      break;
    case FaultTrigger::kOnce:
      fire = (hit == param);
      break;
    case FaultTrigger::kEveryNth:
      fire = (hit % param == 0);
      break;
    case FaultTrigger::kProbability: {
      const std::uint64_t z = rng_state_.fetch_add(0x9e3779b97f4a7c15ULL,
                                                   std::memory_order_relaxed) +
                              0x9e3779b97f4a7c15ULL;
      fire = (splitmix64(z) % 1000000 < param);
      break;
    }
  }
  if (fire) {
    fires_.fetch_add(1, std::memory_order_relaxed);
    fires_metric_->add();
  }
  return fire;
}

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

const std::vector<std::string>& FaultRegistry::catalog() {
  static const auto* names = new std::vector<std::string>{
      "linker.dlopen",      "linker.dlforce",     "kernel.set_persona",
      "egl.create_context", "egl.create_surface", "gmem.allocate",
      "iosurface.lock",     "iosurface.unlock",   "dispatch.impersonate",
      "gpu.tile_worker",    "session.create",
  };
  return *names;
}

FaultRegistry::FaultRegistry() {
  for (const std::string& name : catalog()) (void)point(name);
  if (const char* filter = std::getenv("CYCADA_FAULT_SESSION");
      filter != nullptr && *filter != '\0') {
    std::uint64_t session_id = 0;
    if (parse_u64(filter, session_id)) {
      set_session_filter(static_cast<std::int64_t>(session_id));
    } else {
      CYCADA_LOG(kWarn) << "CYCADA_FAULT_SESSION: bad session id '" << filter
                        << "'";
    }
  }
  if (const char* spec = std::getenv("CYCADA_FAULT");
      spec != nullptr && *spec != '\0') {
    (void)configure(spec);
  }
}

void FaultRegistry::set_session_filter(std::int64_t session_id) {
  g_session_filter.store(session_id < 0 ? -1 : session_id,
                         std::memory_order_relaxed);
}

std::int64_t FaultRegistry::session_filter() {
  return g_session_filter.load(std::memory_order_relaxed);
}

FaultPoint& FaultRegistry::point(std::string_view name) {
  std::lock_guard lock(mutex_);
  for (const auto& existing : points_) {
    if (existing->name() == name) return *existing;
  }
  points_.push_back(std::make_unique<FaultPoint>(std::string(name)));
  return *points_.back();
}

bool FaultRegistry::configure(std::string_view spec) {
  bool ok = true;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view item = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view()
                                           : spec.substr(comma + 1);
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      CYCADA_LOG(kWarn) << "CYCADA_FAULT: malformed entry '" << item
                        << "' (want name=trigger)";
      ok = false;
      continue;
    }
    const std::string_view name = item.substr(0, eq);
    std::string_view trigger = item.substr(eq + 1);
    std::string_view arg1, arg2;
    if (const std::size_t colon = trigger.find(':');
        colon != std::string_view::npos) {
      arg1 = trigger.substr(colon + 1);
      trigger = trigger.substr(0, colon);
      if (const std::size_t colon2 = arg1.find(':');
          colon2 != std::string_view::npos) {
        arg2 = arg1.substr(colon2 + 1);
        arg1 = arg1.substr(0, colon2);
      }
    }

    // Parse the trigger once, then apply it either to the named point or —
    // for the chaos-mode pseudo-name "all" — to every catalog probe.
    std::uint64_t value = 0;
    auto apply = [&](FaultPoint& target) -> bool {
      if (trigger == "off") {
        target.disarm();
      } else if (trigger == "once") {
        if (arg1.empty()) {
          target.arm_once();
        } else if (parse_u64(arg1, value)) {
          target.arm_once(value);
        } else {
          CYCADA_LOG(kWarn) << "CYCADA_FAULT: bad once count in '" << item
                            << "'";
          return false;
        }
      } else if (trigger == "every") {
        if (parse_u64(arg1, value) && value > 0) {
          target.arm_every(value);
        } else {
          CYCADA_LOG(kWarn) << "CYCADA_FAULT: bad every-N in '" << item << "'";
          return false;
        }
      } else if (trigger == "stall") {
        std::uint64_t every = 1;
        if (parse_u64(arg1, value) && value > 0 &&
            (arg2.empty() || (parse_u64(arg2, every) && every > 0))) {
          target.arm_stall(value, every);
        } else {
          CYCADA_LOG(kWarn) << "CYCADA_FAULT: bad stall ms/N in '" << item
                            << "'";
          return false;
        }
      } else if (trigger == "prob") {
        std::uint64_t seed = 1;
        if (parse_u64(arg1, value) && value <= 1000000 &&
            (arg2.empty() || parse_u64(arg2, seed))) {
          target.arm_probability(static_cast<std::uint32_t>(value), seed);
        } else {
          CYCADA_LOG(kWarn) << "CYCADA_FAULT: bad prob ppm/seed in '" << item
                            << "'";
          return false;
        }
      } else {
        CYCADA_LOG(kWarn) << "CYCADA_FAULT: unknown trigger in '" << item
                          << "' (want once|every|prob|stall|off)";
        return false;
      }
      return true;
    };
    if (name == "all") {
      for (const std::string& catalog_name : catalog()) {
        if (!apply(point(catalog_name))) {
          ok = false;
          break;  // the entry is malformed; reporting it once is enough
        }
      }
    } else if (!apply(point(name))) {
      ok = false;
    }
  }
  return ok;
}

void FaultRegistry::disarm_all() {
  std::lock_guard lock(mutex_);
  for (const auto& point : points_) point->disarm();
}

void FaultRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& point : points_) {
    point->disarm();
    point->reset_stats();
  }
}

std::vector<FaultPointInfo> FaultRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<FaultPointInfo> out;
  out.reserve(points_.size());
  for (const auto& point : points_) {
    out.push_back({point->name(), point->trigger(), point->hits(),
                   point->fires(), point->stall_ms(), point->stalls()});
  }
  return out;
}

}  // namespace cycada::util
