#include "util/epoch.h"

#include "trace/metrics.h"

namespace cycada::util {

namespace {

// Hands a dying thread's slot back so thread churn does not exhaust the
// fixed array, and clears the slot's epoch (not just the owner) so a dead
// thread's cached pin cannot hold the reclamation floor. Kept out of
// EpochThreadPin itself: a destructor there would force the lazy-init TLS
// wrapper onto every Guard fast-path access. Constructed (and thereby
// registered for thread exit) only when a slot is first acquired.
struct PinSlotJanitor {
  ~PinSlotJanitor() {
    detail::EpochThreadPin& pin = detail::t_epoch_pin;
    if (pin.slot_epoch != nullptr)
      pin.slot_epoch->store(0, std::memory_order_release);
    if (pin.owner != nullptr)
      pin.owner->store(nullptr, std::memory_order_release);
  }
};

void register_pin_janitor() {
  thread_local PinSlotJanitor janitor;
  (void)janitor;
}

}  // namespace

EpochReclaimer& EpochReclaimer::instance() {
  static EpochReclaimer* reclaimer = new EpochReclaimer();
  return *reclaimer;
}

EpochReclaimer::PinSlot* EpochReclaimer::acquire_slot() {
  if (detail::t_epoch_pin.slot != nullptr) return static_cast<PinSlot*>(detail::t_epoch_pin.slot);
  if (detail::t_epoch_pin.overflow) return nullptr;
  for (PinSlot& slot : slots_) {
    const void* expected = nullptr;
    if (slot.owner.compare_exchange_strong(expected, &detail::t_epoch_pin,
                                           std::memory_order_acq_rel)) {
      detail::t_epoch_pin.slot = &slot;
      detail::t_epoch_pin.owner = &slot.owner;
      detail::t_epoch_pin.slot_epoch = &slot.epoch;
      register_pin_janitor();
      return &slot;
    }
  }
  detail::t_epoch_pin.overflow = true;
  return nullptr;
}

void EpochReclaimer::pin() {
  // Cached-pin fast path: the slot still publishes the epoch from a prior
  // guard. The pin never lapsed, so everything retired since carries a
  // stamp >= published (stamps are monotonic) and stays protected; if the
  // relaxed load of the global epoch says nothing moved, there is no reason
  // to re-publish and the fence is skipped entirely. A stale relaxed read
  // only delays revalidation — the standing pin keeps the read safe.
  if (detail::t_epoch_pin.published != 0 &&
      global_epoch_.load(std::memory_order_relaxed) == detail::t_epoch_pin.published) {
    return;
  }
  PinSlot* slot = acquire_slot();
  if (slot == nullptr) {
    // Slot table full: count the pin globally. try_reclaim() refuses to
    // free anything while any overflow pin is live — safe, just slower.
    overflow_pins_.fetch_add(1, std::memory_order_seq_cst);
    return;
  }
  // Publish-then-confirm: store the observed epoch, fence, and re-read. If
  // the global epoch moved we re-publish, so by the time pin() returns the
  // slot holds an epoch no older than any retirement stamp a concurrent
  // writer could have taken without seeing our pin. Overwriting a cached
  // pin with a newer epoch is a single store — the slot is never 0 in
  // between, so the floor computation always sees one of the two values.
  std::uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
  for (;;) {
    slot->epoch.store(epoch, std::memory_order_seq_cst);
    const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == epoch) break;
    epoch = now;
  }
  detail::t_epoch_pin.published = epoch;
}

void EpochReclaimer::unpin() {
  if (detail::t_epoch_pin.slot != nullptr) {
    // Leave the pin published (cached) so the next guard on this thread can
    // revalidate fence-free. release_cached_pin() or thread exit drops it.
    return;
  }
  overflow_pins_.fetch_sub(1, std::memory_order_seq_cst);
}

void EpochReclaimer::release_cached_pin() {
  if (detail::t_epoch_pin.depth != 0 || detail::t_epoch_pin.published == 0) return;
  static_cast<PinSlot*>(detail::t_epoch_pin.slot)->epoch.store(0, std::memory_order_release);
  detail::t_epoch_pin.published = 0;
}

void EpochReclaimer::retire(void* ptr, void (*deleter)(void*)) {
  // The retiring thread's own cached pin would otherwise hold the floor at
  // whatever epoch it last probed — drop it (no-op inside an active guard).
  release_cached_pin();
  const std::uint64_t stamp =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  std::size_t pending;
  {
    std::lock_guard lock(mutex_);
    retired_.push_back({ptr, deleter, stamp});
    pending = retired_.size();
    retired_count_.store(pending, std::memory_order_relaxed);
  }
  trace::MetricsRegistry::instance()
      .counter("epoch.retired")
      .add();
  if (pending >= kReclaimThreshold) (void)try_reclaim();
}

std::size_t EpochReclaimer::try_reclaim() {
  release_cached_pin();
  if (overflow_pins_.load(std::memory_order_seq_cst) != 0) return 0;
  // Any reader that pins after this load observes an epoch >= `floor`, so
  // items stamped strictly below the minimum pinned epoch are unreachable.
  std::uint64_t floor = global_epoch_.load(std::memory_order_seq_cst);
  for (const PinSlot& slot : slots_) {
    const std::uint64_t pinned = slot.epoch.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < floor) floor = pinned;
  }

  std::vector<RetiredItem> ready;
  {
    std::lock_guard lock(mutex_);
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->stamp < floor) {
        ready.push_back(*it);
      } else {
        *keep++ = *it;
      }
    }
    retired_.erase(keep, retired_.end());
    retired_count_.store(retired_.size(), std::memory_order_relaxed);
  }
  for (const RetiredItem& item : ready) item.deleter(item.ptr);
  if (!ready.empty()) {
    reclaimed_total_.fetch_add(ready.size(), std::memory_order_relaxed);
    trace::MetricsRegistry::instance()
        .counter("epoch.reclaimed")
        .add(ready.size());
  }
  return ready.size();
}

std::size_t EpochReclaimer::retired_count() const {
  return retired_count_.load(std::memory_order_relaxed);
}

std::uint64_t EpochReclaimer::reclaimed_total() const {
  return reclaimed_total_.load(std::memory_order_relaxed);
}

std::uint64_t EpochReclaimer::epoch() const {
  return global_epoch_.load(std::memory_order_relaxed);
}

}  // namespace cycada::util
