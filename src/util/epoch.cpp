#include "util/epoch.h"

#include "trace/metrics.h"

namespace cycada::util {

namespace {

// Per-thread pin state. The slot pointer survives for the thread's
// lifetime; the destructor hands the slot back so thread churn does not
// exhaust the fixed array (the slot's epoch is 0 whenever no Guard is
// live, so a handed-back slot is immediately reusable).
struct ThreadPin {
  void* slot = nullptr;
  std::atomic<const void*>* owner = nullptr;
  bool overflow = false;
  int depth = 0;
  ~ThreadPin() {
    if (owner != nullptr) owner->store(nullptr, std::memory_order_release);
  }
};
thread_local ThreadPin t_pin;

}  // namespace

EpochReclaimer& EpochReclaimer::instance() {
  static EpochReclaimer* reclaimer = new EpochReclaimer();
  return *reclaimer;
}

EpochReclaimer::PinSlot* EpochReclaimer::acquire_slot() {
  if (t_pin.slot != nullptr) return static_cast<PinSlot*>(t_pin.slot);
  if (t_pin.overflow) return nullptr;
  for (PinSlot& slot : slots_) {
    const void* expected = nullptr;
    if (slot.owner.compare_exchange_strong(expected, &t_pin,
                                           std::memory_order_acq_rel)) {
      t_pin.slot = &slot;
      t_pin.owner = &slot.owner;
      return &slot;
    }
  }
  t_pin.overflow = true;
  return nullptr;
}

void EpochReclaimer::pin() {
  PinSlot* slot = acquire_slot();
  if (slot == nullptr) {
    // Slot table full: count the pin globally. try_reclaim() refuses to
    // free anything while any overflow pin is live — safe, just slower.
    overflow_pins_.fetch_add(1, std::memory_order_seq_cst);
    return;
  }
  // Publish-then-confirm: store the observed epoch, fence, and re-read. If
  // the global epoch moved we re-publish, so by the time pin() returns the
  // slot holds an epoch no older than any retirement stamp a concurrent
  // writer could have taken without seeing our pin.
  std::uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
  for (;;) {
    slot->epoch.store(epoch, std::memory_order_seq_cst);
    const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == epoch) break;
    epoch = now;
  }
}

void EpochReclaimer::unpin() {
  if (t_pin.slot != nullptr) {
    static_cast<PinSlot*>(t_pin.slot)
        ->epoch.store(0, std::memory_order_release);
    return;
  }
  overflow_pins_.fetch_sub(1, std::memory_order_seq_cst);
}

EpochReclaimer::Guard::Guard() {
  if (t_pin.depth++ == 0) EpochReclaimer::instance().pin();
}

EpochReclaimer::Guard::~Guard() {
  if (--t_pin.depth == 0) EpochReclaimer::instance().unpin();
}

void EpochReclaimer::retire(void* ptr, void (*deleter)(void*)) {
  const std::uint64_t stamp =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  std::size_t pending;
  {
    std::lock_guard lock(mutex_);
    retired_.push_back({ptr, deleter, stamp});
    pending = retired_.size();
    retired_count_.store(pending, std::memory_order_relaxed);
  }
  trace::MetricsRegistry::instance()
      .counter("epoch.retired")
      .add();
  if (pending >= kReclaimThreshold) (void)try_reclaim();
}

std::size_t EpochReclaimer::try_reclaim() {
  if (overflow_pins_.load(std::memory_order_seq_cst) != 0) return 0;
  // Any reader that pins after this load observes an epoch >= `floor`, so
  // items stamped strictly below the minimum pinned epoch are unreachable.
  std::uint64_t floor = global_epoch_.load(std::memory_order_seq_cst);
  for (const PinSlot& slot : slots_) {
    const std::uint64_t pinned = slot.epoch.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < floor) floor = pinned;
  }

  std::vector<RetiredItem> ready;
  {
    std::lock_guard lock(mutex_);
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->stamp < floor) {
        ready.push_back(*it);
      } else {
        *keep++ = *it;
      }
    }
    retired_.erase(keep, retired_.end());
    retired_count_.store(retired_.size(), std::memory_order_relaxed);
  }
  for (const RetiredItem& item : ready) item.deleter(item.ptr);
  if (!ready.empty()) {
    reclaimed_total_.fetch_add(ready.size(), std::memory_order_relaxed);
    trace::MetricsRegistry::instance()
        .counter("epoch.reclaimed")
        .add(ready.size());
  }
  return ready.size();
}

std::size_t EpochReclaimer::retired_count() const {
  return retired_count_.load(std::memory_order_relaxed);
}

std::uint64_t EpochReclaimer::reclaimed_total() const {
  return reclaimed_total_.load(std::memory_order_relaxed);
}

std::uint64_t EpochReclaimer::epoch() const {
  return global_epoch_.load(std::memory_order_relaxed);
}

}  // namespace cycada::util
