// Pixel formats and color conversion shared by the GPU, the graphics-memory
// allocators (gralloc / IOSurface) and the 2D drawing paths.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace cycada {

// The formats both graphics stacks allocate. RGBA8888 is the universal
// render-target format; RGB565 and ALPHA8 appear in texture uploads and in
// the IOSurface property tests.
enum class PixelFormat : std::uint8_t {
  kRgba8888,
  kRgbx8888,
  kRgb565,
  kAlpha8,
  kLuminance8,
};

constexpr std::size_t bytes_per_pixel(PixelFormat format) {
  switch (format) {
    case PixelFormat::kRgba8888:
    case PixelFormat::kRgbx8888: return 4;
    case PixelFormat::kRgb565: return 2;
    case PixelFormat::kAlpha8:
    case PixelFormat::kLuminance8: return 1;
  }
  return 0;
}

const char* pixel_format_name(PixelFormat format);

// Floating-point RGBA color in [0,1], the rasterizer's working space.
struct Color {
  float r = 0.f, g = 0.f, b = 0.f, a = 1.f;

  friend Color operator*(Color c, float s) {
    return {c.r * s, c.g * s, c.b * s, c.a * s};
  }
  friend Color operator*(Color x, Color y) {
    return {x.r * y.r, x.g * y.g, x.b * y.b, x.a * y.a};
  }
  friend Color operator+(Color x, Color y) {
    return {x.r + y.r, x.g + y.g, x.b + y.b, x.a + y.a};
  }
};

// Packs a float color to a 32-bit RGBA8888 value (R in the low byte,
// matching GL_RGBA/GL_UNSIGNED_BYTE memory order on little-endian).
std::uint32_t pack_rgba8888(Color c);
Color unpack_rgba8888(std::uint32_t packed);

std::uint16_t pack_rgb565(Color c);
Color unpack_rgb565(std::uint16_t packed);

inline float clamp01(float v) { return std::clamp(v, 0.f, 1.f); }

}  // namespace cycada
