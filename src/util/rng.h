// Deterministic pseudo-random numbers (SplitMix64). Workload generators use
// this instead of std::mt19937 so runs are reproducible across platforms and
// standard-library versions.
#pragma once

#include <cstdint>

namespace cycada {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64()); }

  // Uniform in [0, bound); bound must be nonzero.
  std::uint32_t next_below(std::uint32_t bound) {
    return static_cast<std::uint32_t>(next_u64() % bound);
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

 private:
  std::uint64_t state_;
};

}  // namespace cycada
