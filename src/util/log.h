// Minimal leveled logging. Messages go to stderr; the threshold is a global
// that tests and benches lower to keep output quiet.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace cycada {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

// Sets / reads the global minimum level that will be emitted. Backed by an
// atomic so tests/benches may flip it while worker threads are logging.
void set_log_level(LogLevel level);
LogLevel log_level();

// Small per-thread ordinal (1, 2, ...) assigned on first use. Shared by log
// lines and trace events so interleaved multi-thread (impersonation) output
// is attributable to a stable thread identity.
int thread_ordinal();

namespace detail {
void log_emit(LogLevel level, std::string_view message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cycada

#define CYCADA_LOG(level)                                         \
  if (::cycada::LogLevel::level < ::cycada::log_level()) {        \
  } else                                                          \
    ::cycada::detail::LogLine(::cycada::LogLevel::level)
