// Lightweight Status / StatusOr error-propagation types.
//
// The Cycada bridge deals with many fallible operations (linker loads,
// syscalls, GL object creation). We follow the Core Guidelines advice of
// reporting errors through return values on boundaries that are expected to
// fail in normal operation, and reserving exceptions for programming errors.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cycada {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kPermissionDenied,
};

// Human-readable name of a status code, e.g. "NOT_FOUND".
constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
  }
  return "UNKNOWN";
}

// A success-or-error result with an optional message. Cheap to copy on the
// success path (no allocation when ok).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }
  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status already_exists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status out_of_range(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  static Status unimplemented(std::string m) {
    return {StatusCode::kUnimplemented, std::move(m)};
  }
  static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }
  static Status resource_exhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status permission_denied(std::string m) {
    return {StatusCode::kPermissionDenied, std::move(m)};
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    std::string out{cycada::to_string(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A value or an error Status. `value()` asserts success; callers on fallible
// paths should test `is_ok()` first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : repr_(std::in_place_index<0>, std::move(value)) {}
  StatusOr(Status status) : repr_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(repr_).is_ok() &&
           "StatusOr must not be constructed from an OK status");
  }

  bool is_ok() const { return repr_.index() == 0; }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const {
    static const Status ok_status{};
    return is_ok() ? ok_status : std::get<1>(repr_);
  }

  T& value() & {
    assert(is_ok());
    return std::get<0>(repr_);
  }
  const T& value() const& {
    assert(is_ok());
    return std::get<0>(repr_);
  }
  T&& value() && {
    assert(is_ok());
    return std::move(std::get<0>(repr_));
  }

  T value_or(T fallback) const& {
    return is_ok() ? std::get<0>(repr_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Status> repr_;
};

// Propagate an error status from an expression that yields a Status.
#define CYCADA_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::cycada::Status cycada_status_tmp_ = (expr);     \
    if (!cycada_status_tmp_.is_ok()) return cycada_status_tmp_; \
  } while (false)

}  // namespace cycada
