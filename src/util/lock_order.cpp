#include "util/lock_order.h"

#include <algorithm>
#include <atomic>
#include <map>

namespace cycada::util {

namespace {

// The graph's own bookkeeping mutex. Deliberately a plain std::mutex: it is
// a leaf (nothing is acquired under it) and must not feed back into the
// graph it guards.
std::mutex g_graph_mutex;
std::atomic<bool> g_recording{false};

struct EdgeKey {
  int from;
  int to;
  bool operator<(const EdgeKey& other) const {
    return from != other.from ? from < other.from : to < other.to;
  }
};

struct EdgeData {
  std::string from_name;
  std::string to_name;
  std::uint64_t count = 0;
};

std::map<EdgeKey, EdgeData>& graph_edges() {
  static auto* edges = new std::map<EdgeKey, EdgeData>();
  return *edges;
}

struct LevelData {
  std::string name;
  std::uint64_t count = 0;
};

std::map<int, LevelData>& level_counts() {
  static auto* counts = new std::map<int, LevelData>();
  return *counts;
}

// Per-thread stack of currently held annotated locks. Fixed capacity: the
// deepest legitimate nest in the tree is 4 levels; overflow entries are
// dropped (and their release ignored) rather than growing the hot path.
struct HeldLock {
  const void* mutex;
  int level;
  const char* name;
  int depth;  // recursive re-acquisitions of the same instance
};
constexpr int kMaxHeld = 16;
thread_local HeldLock t_held[kMaxHeld];
thread_local int t_held_count = 0;

// Process-wide tally of entries currently on any thread's held stack.
// Pushes and pops pair exactly (note_released only decrements when it finds
// the entry a push counted), so this is zero whenever no recorded lock is
// held — the invariant check_fault_safety() relies on. Deliberately not
// cleared by reset(): locks held across a reset are still held.
std::atomic<std::int64_t> g_held_total{0};

}  // namespace

const char* lock_level_name(int level) {
  switch (static_cast<LockLevel>(level)) {
    case LockLevel::kDegradedEgl: return "degraded-egl";
    case LockLevel::kLinker: return "linker";
    case LockLevel::kDiplomatRegistry: return "diplomat-registry";
    case LockLevel::kTlsTracker: return "tls-tracker";
    case LockLevel::kKernelThreads: return "kernel-threads";
    case LockLevel::kKernelKeys: return "kernel-keys";
    case LockLevel::kThreadTls: return "thread-tls";
    case LockLevel::kEpoch: return "epoch";
    case LockLevel::kFaultRegistry: return "fault-registry";
    case LockLevel::kWatchdog: return "watchdog";
    case LockLevel::kSessionRegistry: return "session-registry";
    case LockLevel::kMetrics: return "metrics";
    case LockLevel::kTracer: return "tracer";
    case LockLevel::kLogEmit: return "log-emit";
  }
  return "?";
}

LockOrderGraph& LockOrderGraph::instance() {
  static LockOrderGraph* graph = new LockOrderGraph();
  return *graph;
}

void LockOrderGraph::set_recording(bool enabled) {
  g_recording.store(enabled, std::memory_order_relaxed);
}

bool LockOrderGraph::recording() const {
  return g_recording.load(std::memory_order_relaxed);
}

std::vector<LockOrderGraph::Edge> LockOrderGraph::edges() const {
  std::lock_guard lock(g_graph_mutex);
  std::vector<Edge> out;
  out.reserve(graph_edges().size());
  for (const auto& [key, data] : graph_edges()) {
    out.push_back({key.from, key.to, data.from_name, data.to_name, data.count});
  }
  return out;
}

std::vector<LockOrderGraph::Edge> LockOrderGraph::inversions() const {
  std::vector<Edge> out;
  for (Edge& edge : edges()) {
    if (edge.from_level >= edge.to_level) out.push_back(std::move(edge));
  }
  return out;
}

std::vector<std::vector<std::string>> LockOrderGraph::find_cycles() const {
  // DFS over the level graph with tricolor marking; one cycle reported per
  // back edge. Level count is tiny, so simplicity beats asymptotics.
  std::map<int, std::vector<int>> adjacency;
  for (const Edge& edge : edges()) {
    adjacency[edge.from_level].push_back(edge.to_level);
    adjacency.try_emplace(edge.to_level);
  }
  std::vector<std::vector<std::string>> cycles;
  std::map<int, int> color;  // 0 white, 1 grey, 2 black
  std::vector<int> path;

  auto dfs = [&](auto&& self, int node) -> void {
    color[node] = 1;
    path.push_back(node);
    for (int next : adjacency[node]) {
      if (color[next] == 1) {
        auto it = std::find(path.begin(), path.end(), next);
        std::vector<std::string> cycle;
        for (; it != path.end(); ++it) cycle.push_back(lock_level_name(*it));
        cycle.push_back(lock_level_name(next));
        cycles.push_back(std::move(cycle));
      } else if (color[next] == 0) {
        self(self, next);
      }
    }
    path.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, _] : adjacency) {
    if (color[node] == 0) dfs(dfs, node);
  }
  return cycles;
}

std::vector<LockOrderGraph::LevelCount> LockOrderGraph::acquisition_counts()
    const {
  std::lock_guard lock(g_graph_mutex);
  std::vector<LevelCount> out;
  out.reserve(level_counts().size());
  for (const auto& [level, data] : level_counts()) {
    out.push_back({level, data.name, data.count});
  }
  return out;
}

std::uint64_t LockOrderGraph::acquisitions(LockLevel level) const {
  std::lock_guard lock(g_graph_mutex);
  auto it = level_counts().find(static_cast<int>(level));
  return it == level_counts().end() ? 0 : it->second.count;
}

std::int64_t LockOrderGraph::held_count() const {
  return g_held_total.load(std::memory_order_relaxed);
}

void LockOrderGraph::reset() {
  std::lock_guard lock(g_graph_mutex);
  graph_edges().clear();
  level_counts().clear();
}

namespace lock_detail {

void note_acquired(const void* mutex, int level, const char* name,
                   bool recursive) {
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i].mutex == mutex) {
      if (recursive) {
        ++t_held[i].depth;
        return;
      }
      break;  // non-recursive relock: fall through and record the self-edge
    }
  }
  {
    std::lock_guard lock(g_graph_mutex);
    LevelData& tally = level_counts()[level];
    if (tally.count == 0) tally.name = name;
    ++tally.count;
    for (int i = 0; i < t_held_count; ++i) {
      if (t_held[i].mutex == mutex) continue;
      EdgeData& data = graph_edges()[{t_held[i].level, level}];
      if (data.count == 0) {
        data.from_name = t_held[i].name;
        data.to_name = name;
      }
      ++data.count;
    }
  }
  if (t_held_count < kMaxHeld) {
    t_held[t_held_count++] = {mutex, level, name, 1};
    g_held_total.fetch_add(1, std::memory_order_relaxed);
  }
}

void note_released(const void* mutex) {
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mutex != mutex) continue;
    if (--t_held[i].depth > 0) return;
    for (int j = i; j < t_held_count - 1; ++j) t_held[j] = t_held[j + 1];
    --t_held_count;
    g_held_total.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
}

}  // namespace lock_detail

}  // namespace cycada::util
