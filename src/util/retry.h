// Bounded retry with cooperative backoff for the replica-lifecycle
// recovery paths (docs/ROBUSTNESS.md). The failures these loops absorb are
// logical (injected faults, transient pool exhaustion), not timing, so the
// backoff is a growing run of yields rather than wall-clock sleeps — tests
// stay fast and deterministic.
#pragma once

#include <thread>
#include <utility>

namespace cycada::util {

// Calls `fn` up to `attempts` times until it returns an is_ok() result
// (Status or StatusOr). Returns the first success, or the last failure.
template <typename F>
auto retry_with_backoff(int attempts, F&& fn) -> decltype(fn()) {
  auto result = fn();
  for (int attempt = 1; attempt < attempts && !result.is_ok(); ++attempt) {
    const int yields = 1 << (attempt < 10 ? attempt : 10);
    for (int i = 0; i < yields; ++i) std::this_thread::yield();
    result = fn();
  }
  return result;
}

}  // namespace cycada::util
