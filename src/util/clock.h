// Timing helpers shared by the instrumentation layer and the benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace cycada {

// Monotonic nanoseconds since an arbitrary epoch.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Accumulates wall time between start/stop pairs; used by the per-function
// GLES profiler behind Figures 7-10.
class Stopwatch {
 public:
  void start() { start_ns_ = now_ns(); }
  // Stops and returns the elapsed nanoseconds of this lap.
  std::int64_t stop() {
    const std::int64_t lap = now_ns() - start_ns_;
    total_ns_ += lap;
    ++laps_;
    return lap;
  }
  std::int64_t total_ns() const { return total_ns_; }
  std::int64_t laps() const { return laps_; }

 private:
  std::int64_t start_ns_ = 0;
  std::int64_t total_ns_ = 0;
  std::int64_t laps_ = 0;
};

}  // namespace cycada
