// Thread-role marker for the GPU tile worker pool (docs/PIPELINE.md).
//
// Tile raster workers execute binned, pre-resolved work and must never
// initiate persona crossings or diplomat calls — crossings stay on the
// dispatch thread that recorded the commands. The pool tags its threads
// with ScopedThreadRole; the persona syscall wrappers and the diplomat
// dispatcher consult current_thread_role() and count any violation into the
// "pipeline.worker.crossings" metric, which the analyzer's
// pipeline.worker-crossing rule turns into a blocking finding
// (src/analyze/pipeline_check.cpp).
//
// Header-only and util-level so both the bottom of the stack (gpu) and the
// top (kernel, core) can see it without a dependency cycle.
#pragma once

namespace cycada::util {

enum class ThreadRole : int {
  kApp = 0,         // default: app / dispatch / bench threads
  kTileWorker = 1,  // a GPU pipeline worker (raster helpers + coordinator)
};

inline thread_local ThreadRole t_thread_role = ThreadRole::kApp;

inline ThreadRole current_thread_role() { return t_thread_role; }

class ScopedThreadRole {
 public:
  explicit ScopedThreadRole(ThreadRole role) : previous_(t_thread_role) {
    t_thread_role = role;
  }
  ~ScopedThreadRole() { t_thread_role = previous_; }
  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;

 private:
  ThreadRole previous_;
};

}  // namespace cycada::util
