// Process-wide hang supervision for the bridge's supervised domains.
//
// Every mechanism the reproduction already has for surviving *errors*
// (bounded retry + shared-fallback EGL, batch abort, serial-raster
// degrade) is blind to a path that simply never returns: a stalled
// persona crossing, a fence wait against a frame that never retires, a
// tile phase whose helper went to sleep. The watchdog closes that class:
//
//   WATCHDOG_SCOPE(WatchdogDomain::kGpuPhase, kWatchdogGpuPhaseBudgetMs);
//
// registers a deadline on the calling thread (a fixed-depth per-thread
// slot stack — push/pop is a handful of relaxed stores, no lock). One
// low-frequency monitor thread scans the slots and flags any scope past
// its deadline: it bumps `watchdog.<domain>.overdue`, emits a "watchdog"
// trace instant, and raises the domain's **rung** on the recovery ladder.
// The scope destructor performs the same escalation deterministically if
// it outlives its budget before the monitor noticed, so single-threaded
// tests never race the monitor period.
//
// Rungs are consulted by the supervised sites themselves (the watchdog
// never unwinds anyone's stack):
//
//   rung(kGpuPhase)   > 0  -> pipeline rasterizes serial, helpers retract
//   rung(kPresent)    > 0  -> present waits shrink, timeouts force-retire
//   rung(kCrossing)   > 0  -> batch_record flushes + declines (plain calls)
//   rung(kEgl)        > 0  -> bridge init goes straight to shared fallback
//
// Hysteresis climbs back: note_frame() is called once per presented
// frame; after `recovery_frames()` consecutive frames in which a domain
// saw no stall, its rung drops one step (watchdog.rung_down), so the
// system probes its way back to full-parallel operation instead of
// staying degraded forever.
//
// CYCADA_WATCHDOG=0 disables supervision (scopes become no-ops);
// CYCADA_WATCHDOG_BUDGET_MS=N overrides every site budget — tests and
// the chaos soak use a small override so stalls trip in milliseconds,
// while the default site budgets are deliberately enormous (hang
// detection, not jitter policing).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "util/lock_order.h"

namespace cycada::trace {
class Counter;
class Histogram;
}  // namespace cycada::trace

namespace cycada::core {
struct WatchdogLadder;
}  // namespace cycada::core

namespace cycada::util {

enum class WatchdogDomain : int {
  kGpuPhase = 0,  // tile pipeline bin/raster phase (docs/PIPELINE.md)
  kPresent,       // present-fence waits (GpuDevice::wait_fence_for)
  kBatch,         // batched-crossing replay flush (src/core/batch.cpp)
  kCrossing,      // persona crossing open/close brackets
  kEgl,           // bridge init ladder (src/ios_gl/egl_bridge.cpp)
  kCompositor,    // SurfaceFlinger composition handoff
  kCount,
};

const char* watchdog_domain_name(WatchdogDomain domain);

// Default per-site budgets. Sized as hang detectors (orders of magnitude
// above any healthy duration) so they never trip on a loaded CI host;
// CYCADA_WATCHDOG_BUDGET_MS overrides all of them at once for tests.
inline constexpr std::int64_t kWatchdogGpuPhaseBudgetMs = 1000;
inline constexpr std::int64_t kWatchdogPresentBudgetMs = 2000;
inline constexpr std::int64_t kWatchdogBatchBudgetMs = 500;
inline constexpr std::int64_t kWatchdogCrossingBudgetMs = 250;
inline constexpr std::int64_t kWatchdogEglBudgetMs = 1000;
inline constexpr std::int64_t kWatchdogCompositorBudgetMs = 2000;

namespace watchdog_detail {

// Fixed-depth deadline stack for one thread. Immortal: a thread acquires
// a free block on first scope, releases it (in_use -> false) at thread
// exit, and the monitor scans every block ever minted — no use-after-free
// window, no lock on the scope hot path.
struct ThreadSlots {
  static constexpr int kMaxDepth = 8;
  struct Slot {
    std::atomic<std::int64_t> enter_ns{0};
    std::atomic<std::int64_t> deadline_ns{0};
    std::atomic<int> domain{0};
    // Bumped on every push; publishes the slot fields (release). The
    // monitor and the destructor dedup escalation through
    // flagged_serial.exchange(serial): whoever exchanges first escalates.
    std::atomic<std::uint64_t> serial{0};
    std::atomic<std::uint64_t> flagged_serial{0};
    // The recovery ladder of the session the scope-pushing thread was
    // bound to (never null once serial is published): the monitor thread
    // escalates against *this* ladder, not its own session's. Ladders are
    // immortal pooled blocks (core/session.h), so a stale pointer read
    // after the session died still dereferences safely.
    std::atomic<core::WatchdogLadder*> ladder{nullptr};
  };
  Slot slots[kMaxDepth];
  std::atomic<int> depth{0};
  std::atomic<bool> in_use{false};
};

}  // namespace watchdog_detail

class Watchdog {
 public:
  static constexpr int kMaxRung = 3;
  static constexpr int kDefaultRecoveryFrames = 3;

  static Watchdog& instance();

  // CYCADA_WATCHDOG=0 at startup, or set_enabled(false), makes every
  // scope a no-op (the monitor idles). Default: enabled.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled);

  // 0 = no override (each site's own budget applies).
  void set_budget_override_ms(std::int64_t ms);
  std::int64_t budget_override_ms() const {
    return budget_override_ms_.load(std::memory_order_relaxed);
  }
  std::int64_t effective_budget_ms(std::int64_t site_budget_ms) const {
    const std::int64_t override_ms = budget_override_ms();
    return override_ms > 0 ? override_ms : site_budget_ms;
  }

  // Recovery-ladder state, per session: rung 0 = healthy; each stall
  // raises the domain's rung (clamped to kMaxRung), each run of
  // recovery_frames() clean frames lowers it by one. These read/advance
  // the *calling thread's session* ladder (the default session's for
  // unbound threads), so one wedged app degrades only its own pipeline.
  int rung(WatchdogDomain domain) const;
  bool degraded(WatchdogDomain domain) const { return rung(domain) > 0; }

  // Records a stall against the domain on the calling session's ladder
  // (called by scope destructors that outlived their budget and by sites
  // whose bounded wait timed out; the monitor escalates via the slot's
  // recorded ladder instead).
  void note_stall(WatchdogDomain domain);

  // Frame boundary for hysteresis; called once per presented frame, on
  // the presenting thread, against its session's ladder.
  void note_frame();

  int recovery_frames() const {
    return recovery_frames_.load(std::memory_order_relaxed);
  }
  void set_recovery_frames(int frames);

  // Drops every rung to 0 and clears hysteresis state (tests) — on every
  // live session's ladder.
  void reset();

  // --- scope/monitor internals (used by WatchdogScope) ---
  watchdog_detail::ThreadSlots& thread_slots();
  void ensure_monitor_started();
  // True if this (slot, serial) had already been flagged overdue; the
  // caller that sees false performs the escalation.
  bool claim_overdue(watchdog_detail::ThreadSlots::Slot& slot,
                     std::uint64_t serial);
  void count_overdue(WatchdogDomain domain, core::WatchdogLadder* ladder,
                     std::int64_t stall_ns);
  void count_stall_latency(WatchdogDomain domain, std::int64_t stall_ns);

 private:
  Watchdog();
  void monitor_main();
  void stop_monitor();
  static void atexit_hook();
  void note_stall_on(core::WatchdogLadder& ladder, WatchdogDomain domain);

  // Ladder state (rung/streak/stalled-flag) lives on the sessions'
  // WatchdogLadder blocks; only the process-global metric handles stay
  // here (one overdue counter and stall histogram per domain, shared by
  // every session).
  struct DomainState {
    trace::Counter* overdue_metric = nullptr;
    trace::Histogram* stall_histogram = nullptr;
  };

  std::atomic<bool> enabled_{true};
  std::atomic<std::int64_t> budget_override_ms_{0};
  std::atomic<int> recovery_frames_{kDefaultRecoveryFrames};
  DomainState domains_[static_cast<int>(WatchdogDomain::kCount)];
  trace::Counter* rung_up_metric_ = nullptr;
  trace::Counter* rung_down_metric_ = nullptr;

  mutable OrderedMutex threads_mutex_{LockLevel::kWatchdog, "util.watchdog"};
  std::vector<watchdog_detail::ThreadSlots*> threads_;

  std::atomic<bool> monitor_started_{false};
  std::atomic<bool> monitor_stop_{false};
  std::thread monitor_;
  std::mutex monitor_lifecycle_mutex_;
};

// RAII deadline scope. Pushes a slot on construction (when the watchdog
// is enabled and the thread's stack has room), pops on destruction, and
// escalates deterministically if the scope outlived its budget without
// the monitor noticing. `overdue()` reports whether either side flagged
// this scope.
class WatchdogScope {
 public:
  WatchdogScope(WatchdogDomain domain, std::int64_t budget_ms);
  ~WatchdogScope();
  WatchdogScope(const WatchdogScope&) = delete;
  WatchdogScope& operator=(const WatchdogScope&) = delete;

  bool overdue() const;

 private:
  watchdog_detail::ThreadSlots* slots_ = nullptr;
  watchdog_detail::ThreadSlots::Slot* slot_ = nullptr;
  core::WatchdogLadder* ladder_ = nullptr;
  std::uint64_t serial_ = 0;
  std::int64_t enter_ns_ = 0;
  std::int64_t budget_ns_ = 0;
  WatchdogDomain domain_;
};

#define CYCADA_WATCHDOG_CONCAT2(a, b) a##b
#define CYCADA_WATCHDOG_CONCAT(a, b) CYCADA_WATCHDOG_CONCAT2(a, b)
#define WATCHDOG_SCOPE(domain, budget_ms)                        \
  ::cycada::util::WatchdogScope CYCADA_WATCHDOG_CONCAT(          \
      cycada_watchdog_scope_, __LINE__)(domain, budget_ms)

}  // namespace cycada::util
