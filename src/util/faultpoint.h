// Named fault-injection points for the failure paths the paper's design
// must survive: dlforce/dlopen exhaustion, persona-syscall failure, vendor
// EGL context/surface creation, gralloc allocation.
//
// A fault point is a process-lifetime object looked up once per call site
// (cache the reference in a function-local static, like trace::Counter).
// Disarmed, `should_fail()` is one relaxed load and a branch, so probes stay
// compiled in permanently. Armed, the trigger is deterministic: one-shot
// (fires on the K-th armed traversal), every-Nth, or seeded-RNG probability
// in parts-per-million — the same seed always fires on the same traversal
// sequence, so failing runs replay exactly.
//
// Configuration comes from the CYCADA_FAULT environment variable at first
// use and from the programmatic API at any time:
//
//   CYCADA_FAULT="linker.dlforce=once,egl.create_context=every:3"
//   CYCADA_FAULT="gmem.allocate=prob:250000:42"   # 25% with seed 42
//
// Spec grammar (comma-separated): name=once | once:K | every:N |
// prob:PPM[:SEED] | stall:MS[:N] | off. Unknown names register a new point
// (tests use ad-hoc points); malformed entries are logged and skipped. The
// pseudo-name "all" applies one trigger to every catalog probe at once —
// chaos mode:
//
//   CYCADA_FAULT="all=prob:1000:7"   # 0.1% on every built-in probe, seed 7
//
// Every evaluation and every fire is exported through the PR 1 metrics
// layer as fault.<name>.hits / fault.<name>.fires.
//
// The stall channel is orthogonal to the fire trigger: `stall:MS[:N]`
// makes every Nth suppression-free traversal of the probe sleep MS
// milliseconds *without* returning failure (hang-class injection — the
// watchdog's food, docs/ROBUSTNESS.md). Because the channels are
// independent, `name=stall:80,name=every:1` injects a stalled *and*
// failing traversal, which is how the forced-close regression test drives
// both at once. Stalls are tallied as fault.<name>.stalls.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/lock_order.h"

namespace cycada::trace {
class Counter;
}  // namespace cycada::trace

namespace cycada::util {

enum class FaultTrigger : int {
  kDisarmed = 0,
  kOnce,         // fire exactly once, on the param_-th armed traversal
  kEveryNth,     // fire on every traversal where hits % N == 0
  kProbability,  // fire with param_ parts-per-million, seeded SplitMix64
};

const char* fault_trigger_name(FaultTrigger trigger);

// While alive on a thread, every fault point on that thread reports
// "no failure" without counting a hit or a fire. Recovery code holds one
// across its fallback rung — the last rung of a degradation ladder must not
// itself be injectable, or a persistent fault could never be survived.
class FaultSuppressionScope {
 public:
  FaultSuppressionScope() { ++t_depth; }
  ~FaultSuppressionScope() { --t_depth; }
  FaultSuppressionScope(const FaultSuppressionScope&) = delete;
  FaultSuppressionScope& operator=(const FaultSuppressionScope&) = delete;

  static bool active() { return t_depth > 0; }

 private:
  static thread_local int t_depth;
};

class FaultPoint {
 public:
  explicit FaultPoint(std::string name);
  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  const std::string& name() const { return name_; }

  // The probe. Disarmed cost: two relaxed loads + branches (fire trigger
  // and stall channel). A traversal first serves any armed stall, then
  // evaluates the fire trigger, so a single traversal can both delay and
  // fail.
  bool should_fail() {
    if (stall_ms_.load(std::memory_order_relaxed) != 0) maybe_stall();
    if (trigger_.load(std::memory_order_relaxed) ==
        static_cast<int>(FaultTrigger::kDisarmed)) {
      return false;
    }
    return evaluate();
  }

  // Arm to fire exactly once, on the nth armed traversal (1 = next).
  void arm_once(std::uint64_t nth = 1);
  void arm_every(std::uint64_t n);
  // ppm in [0, 1000000]; the seed makes the fire sequence reproducible.
  void arm_probability(std::uint32_t ppm, std::uint64_t seed = 1);
  // Arm the orthogonal stall channel: every every_nth suppression-free
  // traversal sleeps ms milliseconds (no failure returned).
  void arm_stall(std::uint64_t ms, std::uint64_t every_nth = 1);
  void disarm_stall();
  // Disarms both the fire trigger and the stall channel.
  void disarm();

  FaultTrigger trigger() const {
    return static_cast<FaultTrigger>(
        trigger_.load(std::memory_order_relaxed));
  }
  // Armed traversals / injected failures since the last reset.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t fires() const {
    return fires_.load(std::memory_order_relaxed);
  }
  std::uint64_t stall_ms() const {
    return stall_ms_.load(std::memory_order_relaxed);
  }
  std::uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  void reset_stats();

 private:
  bool evaluate();
  void maybe_stall();

  const std::string name_;
  std::atomic<int> trigger_{static_cast<int>(FaultTrigger::kDisarmed)};
  std::atomic<std::uint64_t> param_{0};
  std::atomic<std::uint64_t> rng_state_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fires_{0};
  // Stall channel (orthogonal to the fire trigger above).
  std::atomic<std::uint64_t> stall_ms_{0};
  std::atomic<std::uint64_t> stall_every_{1};
  std::atomic<std::uint64_t> stall_hits_{0};
  std::atomic<std::uint64_t> stalls_{0};
  trace::Counter* hits_metric_;
  trace::Counter* fires_metric_;
  trace::Counter* stalls_metric_;
};

struct FaultPointInfo {
  std::string name;
  FaultTrigger trigger;
  std::uint64_t hits;
  std::uint64_t fires;
  std::uint64_t stall_ms;
  std::uint64_t stalls;
};

// Process-wide fault-point directory. The constructor eagerly registers the
// catalog of built-in points (so `snapshot()` and the fault-matrix test see
// every probe even before its code path runs) and applies CYCADA_FAULT.
class FaultRegistry {
 public:
  static FaultRegistry& instance();

  // Finds or creates; the returned reference is valid forever.
  FaultPoint& point(std::string_view name);

  // Applies a CYCADA_FAULT-syntax spec. Returns false (after logging) if
  // any entry was malformed; well-formed entries still apply.
  bool configure(std::string_view spec);

  void disarm_all();
  // Disarm everything and zero hit/fire tallies (metrics counters are owned
  // by the metrics registry and reset with it).
  void reset();

  // Per-session fault targeting: when a filter is set, probes only count
  // and fire on threads whose core::Session::current() has that id; every
  // other session traverses probes as if disarmed. -1 clears the filter.
  // Seeded from CYCADA_FAULT_SESSION; the fleet harness uses it to drive
  // chaos into one session while its neighbors stay clean.
  static void set_session_filter(std::int64_t session_id);
  static std::int64_t session_filter();

  std::vector<FaultPointInfo> snapshot() const;

  // The built-in probe names, in registration order.
  static const std::vector<std::string>& catalog();

 private:
  FaultRegistry();

  mutable OrderedMutex mutex_{LockLevel::kFaultRegistry,
                              "util.fault-registry"};
  std::vector<std::unique_ptr<FaultPoint>> points_;
};

}  // namespace cycada::util
