#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/clock.h"
#include "util/lock_order.h"

namespace cycada {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
util::OrderedMutex g_emit_mutex{util::LockLevel::kLogEmit, "log.emit"};

constexpr const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

// Monotonic epoch captured on first emission; log timestamps are seconds
// since then, matching the tracer's clock.
std::int64_t log_epoch_ns() {
  static const std::int64_t epoch = now_ns();
  return epoch;
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

int thread_ordinal() {
  static std::atomic<int> next{1};
  thread_local const int ordinal = next.fetch_add(1);
  return ordinal;
}

namespace detail {
void log_emit(LogLevel level, std::string_view message) {
  // Capture the epoch before sampling the clock: with the subtraction's
  // unspecified evaluation order the first line could print a tiny
  // negative timestamp.
  const std::int64_t epoch_ns = log_epoch_ns();
  const double seconds = static_cast<double>(now_ns() - epoch_ns) * 1e-9;
  const int ordinal = thread_ordinal();
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[cycada %s %11.6f t%02d] %.*s\n", level_tag(level),
               seconds, ordinal, static_cast<int>(message.size()),
               message.data());
}
}  // namespace detail

}  // namespace cycada
