#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cycada {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

constexpr const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, std::string_view message) {
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[cycada %s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}
}  // namespace detail

}  // namespace cycada
