// A Grand Central Dispatch-style work queue (paper §7): asynchronous jobs
// "implicitly take on the GLES and EAGL context of the thread that submitted
// the asynchronous job". Worker threads register with the simulated kernel
// in the iOS persona and adopt the submitter's EAGLContext for the duration
// of each job — which, on Cycada, exercises thread impersonation and TLS
// migration on every GLES call the job makes.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ios_gl/eagl.h"

namespace cycada::dispatch {

class DispatchQueue {
 public:
  enum class Kind { kSerial, kConcurrent };

  explicit DispatchQueue(std::string label, Kind kind = Kind::kSerial,
                         int worker_count = 2);
  ~DispatchQueue();
  DispatchQueue(const DispatchQueue&) = delete;
  DispatchQueue& operator=(const DispatchQueue&) = delete;

  const std::string& label() const { return label_; }

  // Enqueues `work`; it runs on a queue thread with the submitter's current
  // EAGLContext adopted (GCD semantics).
  void async(std::function<void()> work);
  // Enqueues and waits for completion.
  void sync(std::function<void()> work);
  // Blocks until everything enqueued so far has run.
  void drain();

  std::uint64_t jobs_completed() const { return completed_; }

 private:
  struct Job {
    std::function<void()> work;
    ios_gl::EAGLContext::Ref submitter_context;
  };

  void worker_loop();

  const std::string label_;
  const Kind kind_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<Job> jobs_;
  std::vector<std::thread> workers_;
  int running_jobs_ = 0;
  std::uint64_t completed_ = 0;
  bool shutting_down_ = false;
};

}  // namespace cycada::dispatch
