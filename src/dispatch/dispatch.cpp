#include "dispatch/dispatch.h"

#include "kernel/kernel.h"

namespace cycada::dispatch {

DispatchQueue::DispatchQueue(std::string label, Kind kind, int worker_count)
    : label_(std::move(label)), kind_(kind) {
  const int count = kind_ == Kind::kSerial ? 1 : std::max(1, worker_count);
  workers_.reserve(count);
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DispatchQueue::~DispatchQueue() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void DispatchQueue::async(std::function<void()> work) {
  Job job;
  job.work = std::move(work);
  // GCD semantics: the job inherits the submitting thread's EAGL context.
  job.submitter_context = ios_gl::EAGLContext::current_context();
  {
    std::lock_guard lock(mutex_);
    jobs_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void DispatchQueue::sync(std::function<void()> work) {
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  async([&, work = std::move(work)] {
    work();
    std::lock_guard lock(done_mutex);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
}

void DispatchQueue::drain() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return jobs_.empty() && running_jobs_ == 0; });
}

void DispatchQueue::worker_loop() {
  // Queue threads are iOS-persona threads in the simulated kernel.
  kernel::Kernel::instance().register_current_thread(kernel::Persona::kIos);
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // shutting down
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++running_jobs_;
    }
    // Adopt the submitter's context: on Cycada this routes the replica's
    // TLS binding onto this thread (aegl_bridge_set_tls) and every GLES
    // call the job makes migrates per call (paper §7).
    ios_gl::EAGLContext::Ref previous = ios_gl::EAGLContext::current_context();
    if (job.submitter_context != nullptr) {
      ios_gl::EAGLContext::set_current_context(job.submitter_context);
    }
    job.work();
    ios_gl::EAGLContext::set_current_context(previous);
    {
      std::lock_guard lock(mutex_);
      --running_jobs_;
      ++completed_;
      if (jobs_.empty() && running_jobs_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace cycada::dispatch
