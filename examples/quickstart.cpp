// Quickstart: run an unmodified "iOS app" code path on Cycada.
//
// The app below is written exactly the way an iOS app would be written —
// EAGL for the drawable, the iOS GLES2 API for rendering, presentRenderbuffer
// to show the frame. Under the hood every GL call is a diplomat into a
// dlforce-replicated Android vendor GLES stack driving the software GPU.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "glport/system_config.h"
#include "ios_gl/eagl.h"
#include "ios_gl/gles.h"

using namespace cycada;
using namespace cycada::ios_gl;

int main() {
  // Boot the simulated device: Android tablet running Cycada, the calling
  // thread registered as an iOS-persona app thread.
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);

  // --- iOS app code starts here -------------------------------------------
  auto context = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2,
                                            /*drawable*/ 128, 128);
  if (!context.is_ok()) {
    std::fprintf(stderr, "EAGLContext failed: %s\n",
                 context.status().to_string().c_str());
    return 1;
  }
  EAGLContext::set_current_context(*context);

  // EAGL pattern: render into an offscreen framebuffer whose renderbuffer
  // is backed by the layer.
  GLuint fbo = 0, rbo = 0;
  glGenFramebuffers(1, &fbo);
  glGenRenderbuffers(1, &rbo);
  glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
  (void)(*context)->renderbuffer_storage_from_drawable(rbo,
                                                       CAEAGLLayer{128, 128});
  glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
  glFramebufferRenderbuffer(glcore::GL_FRAMEBUFFER, glcore::GL_COLOR_ATTACHMENT0,
                            glcore::GL_RENDERBUFFER, rbo);
  glViewport(0, 0, 128, 128);

  // A gradient triangle via the programmable pipeline.
  const char* vs_src =
      "attribute vec4 a_position; attribute vec4 a_color; uniform mat4 u_mvp;"
      "varying vec4 v_color;"
      "void main() { gl_Position = u_mvp * a_position; v_color = a_color; }";
  const char* fs_src =
      "varying vec4 v_color; void main() { gl_FragColor = v_color; }";
  const GLuint vs = glCreateShader(glcore::GL_VERTEX_SHADER);
  const GLuint fs = glCreateShader(glcore::GL_FRAGMENT_SHADER);
  glShaderSource(vs, 1, &vs_src, nullptr);
  glShaderSource(fs, 1, &fs_src, nullptr);
  glCompileShader(vs);
  glCompileShader(fs);
  const GLuint program = glCreateProgram();
  glAttachShader(program, vs);
  glAttachShader(program, fs);
  glLinkProgram(program);
  glUseProgram(program);
  const float identity[16] = {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1};
  glUniformMatrix4fv(glGetUniformLocation(program, "u_mvp"), 1,
                     glcore::GL_FALSE, identity);

  glClearColor(0.08f, 0.08f, 0.12f, 1.f);
  glClear(glcore::GL_COLOR_BUFFER_BIT);
  const float positions[] = {-0.9f, -0.8f, 0.9f, -0.8f, 0.f, 0.9f};
  const float colors[] = {1, 0, 0, 1, 0, 1, 0, 1, 0, 0, 1, 1};
  glEnableVertexAttribArray(0);
  glEnableVertexAttribArray(1);
  glVertexAttribPointer(0, 2, glcore::GL_FLOAT, glcore::GL_FALSE, 0, positions);
  glVertexAttribPointer(1, 4, glcore::GL_FLOAT, glcore::GL_FALSE, 0, colors);
  glDrawArrays(glcore::GL_TRIANGLES, 0, 3);

  // Show the frame (the multi diplomat that draws the offscreen buffer into
  // the default framebuffer and swaps).
  (void)(*context)->present_renderbuffer(rbo);
  // --- iOS app code ends here ---------------------------------------------

  const Image screen = (*context)->screen_snapshot();
  const bool wrote = screen.write_ppm("quickstart.ppm");
  std::printf("Cycada quickstart\n");
  std::printf("  GL errors:        %s\n",
              glGetError() == glcore::GL_NO_ERROR ? "none" : "present!");
  std::printf("  screen:           %dx%d, corner=0x%08x center=0x%08x\n",
              screen.width(), screen.height(), screen.at(2, 2),
              screen.at(64, 80));
  std::printf("  screenshot:       %s\n",
              wrote ? "quickstart.ppm" : "(write failed)");
  std::printf("  vendor via bridge: %s\n",
              reinterpret_cast<const char*>(glGetString(glcore::GL_VENDOR)));
  EAGLContext::clear_current_context();
  return 0;
}
