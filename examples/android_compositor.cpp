// The Android half of the story: two "apps" render into their own EGL
// window surfaces and Surface Flinger composes them onto the display —
// the pipeline of the paper's Figure 2 (GLES -> GraphicBuffer ->
// Surface Flinger / HW Composer). The same buffers Cycada shares with iOS
// code are the ones the compositor scans out.
#include <cmath>
#include <cstdio>

#include "android_gl/egl.h"
#include "android_gl/surface_flinger.h"
#include "android_gl/vendor.h"
#include "glport/system_config.h"

using namespace cycada;
using namespace cycada::android_gl;

namespace {

// A status-bar-ish gradient app.
void render_status_bar(AndroidEgl* egl, EglSurface* surface,
                       EglContext* context) {
  egl->eglMakeCurrent(surface, context);
  glcore::GlesEngine& gl = *egl->gles();
  gl.glViewport(0, 0, surface->width(), surface->height());
  gl.glClearColor(0.05f, 0.05f, 0.1f, 1.f);
  gl.glClear(glcore::GL_COLOR_BUFFER_BIT);
  gl.glMatrixMode(glcore::GL_PROJECTION);
  gl.glLoadIdentity();
  gl.glOrthof(-1, 1, -1, 1, -1, 1);
  gl.glMatrixMode(glcore::GL_MODELVIEW);
  gl.glLoadIdentity();
  gl.glEnableClientState(glcore::GL_VERTEX_ARRAY);
  gl.glColor4f(0.2f, 0.8f, 0.4f, 1.f);
  const float bar[] = {-0.9f, -0.5f, 0.5f, -0.5f, 0.5f, 0.5f,
                       -0.9f, -0.5f, 0.5f, 0.5f,  -0.9f, 0.5f};
  gl.glVertexPointer(2, glcore::GL_FLOAT, 0, bar);
  gl.glDrawArrays(glcore::GL_TRIANGLES, 0, 6);
  gl.glDisableClientState(glcore::GL_VERTEX_ARRAY);
  egl->eglSwapBuffers(surface);
}

// A "game" app drawing a spinning fan.
void render_game(AndroidEgl* egl, EglSurface* surface, EglContext* context,
                 int frame) {
  egl->eglMakeCurrent(surface, context);
  glcore::GlesEngine& gl = *egl->gles();
  gl.glViewport(0, 0, surface->width(), surface->height());
  gl.glClearColor(0.1f, 0.02f, 0.02f, 1.f);
  gl.glClear(glcore::GL_COLOR_BUFFER_BIT);
  gl.glMatrixMode(glcore::GL_PROJECTION);
  gl.glLoadIdentity();
  gl.glOrthof(-1, 1, -1, 1, -1, 1);
  gl.glMatrixMode(glcore::GL_MODELVIEW);
  gl.glLoadIdentity();
  gl.glRotatef(frame * 15.f, 0, 0, 1);
  gl.glEnableClientState(glcore::GL_VERTEX_ARRAY);
  for (int blade = 0; blade < 4; ++blade) {
    gl.glPushMatrix();
    gl.glRotatef(blade * 90.f, 0, 0, 1);
    gl.glColor4f(1.f, 0.5f + 0.1f * blade, 0.1f, 1.f);
    const float tri[] = {0.f, 0.f, 0.9f, 0.15f, 0.9f, -0.15f};
    gl.glVertexPointer(2, glcore::GL_FLOAT, 0, tri);
    gl.glDrawArrays(glcore::GL_TRIANGLES, 0, 3);
    gl.glPopMatrix();
  }
  gl.glDisableClientState(glcore::GL_VERTEX_ARRAY);
  egl->eglSwapBuffers(surface);
}

}  // namespace

int main() {
  glport::apply_system_config(glport::SystemConfig::kAndroid);
  SurfaceFlinger::instance().reset();

  AndroidEgl* egl = open_android_egl();
  if (egl == nullptr || egl->eglInitialize() != EGL_TRUE) {
    std::fprintf(stderr, "EGL init failed\n");
    return 1;
  }
  EglSurface* status_bar = egl->eglCreateWindowSurface(160, 24);
  EglSurface* game = egl->eglCreateWindowSurface(120, 100);
  EglContext* context = egl->eglCreateContext(1);
  if (status_bar == nullptr || game == nullptr || context == nullptr) {
    std::fprintf(stderr, "surface/context setup failed\n");
    return 1;
  }

  SurfaceFlinger& flinger = SurfaceFlinger::instance();
  flinger.add_layer(game, 20, 26, /*z=*/0);
  const auto overlay = flinger.add_layer(status_bar, 0, 0, /*z=*/1, 0.9f);
  (void)overlay;

  render_status_bar(egl, status_bar, context);
  for (int frame = 0; frame < 12; ++frame) {
    render_game(egl, game, context, frame);
  }
  const Image display = flinger.compose(160, 130);
  const bool wrote = display.write_ppm("compositor.ppm");

  std::printf("Android compositor (Surface Flinger path of Figure 2)\n");
  std::printf("  layers composed:  %zu\n", flinger.layer_count());
  std::printf("  display:          160x130 -> %s\n",
              wrote ? "compositor.ppm" : "(write failed)");
  std::printf("  status bar pixel: 0x%08x (translucent over game)\n",
              display.at(30, 12));
  std::printf("  game pixel:       0x%08x\n", display.at(80, 76));
  std::printf("  GL errors:        %s\n",
              egl->gles()->glGetError() == glcore::GL_NO_ERROR ? "none"
                                                               : "present!");
  return 0;
}
