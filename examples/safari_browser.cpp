// "Safari on Cycada": the paper's §9 functional demonstration. The mini
// browser visits a set of synthetic "top sites", renders each through the
// full Cycada bridge, verifies every page against the reference software
// renderer, runs the Acid conformance battery, and finishes with a
// SunSpider category.
#include <cstdio>
#include <string>
#include <vector>

#include "glport/system_config.h"
#include "jsvm/sunspider.h"
#include "webkit/browser.h"

using namespace cycada;

namespace {

struct Site {
  const char* name;
  std::string markup;
};

std::vector<Site> top_sites() {
  return {
      {"search",
       "<body bg=#ffffff><h1 color=#4285f4>Search</h1>"
       "<p color=#202124>query the entire web from one little box</p>"
       "<div bg=#f1f3f4 height=24></div></body>"},
      {"news",
       "<body bg=#fafafa><h1 color=#b80000>Daily News</h1>"
       "<div bg=#b80000 height=4></div>"
       "<p color=#333333>iOS apps observed running on Android tablet;"
       " researchers cite diplomatic functions</p>"
       "<p color=#666666>markets unmoved by persona switching</p></body>"},
      {"video",
       "<body bg=#181818><h1 color=#ff0000>Video</h1>"
       "<div bg=#303030 width=160 height=90></div>"
       "<p color=#aaaaaa>recommended: kernel ABI deep dives</p></body>"},
      {"wiki",
       "<body bg=#ffffff><h1 color=#202122>Encyclopedia</h1>"
       "<p color=#202122>Binary compatibility is the ability of a system to"
       " run application binaries built for a different system</p>"
       "<div bg=#eaf3ff height=30><span color=#054a91>see also: thread"
       " impersonation</span></div></body>"},
      {"social",
       "<body bg=#f0f2f5><h1 color=#1877f2>social</h1>"
       "<div bg=#ffffff height=36><span color=#050505>friend posted a photo"
       " of a capybara</span></div>"
       "<div bg=#ffffff height=36><span color=#050505>colleague shared a"
       " paper about GPUs</span></div></body>"},
  };
}

}  // namespace

int main() {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  auto port = glport::make_gl_port(glport::SystemConfig::kCycadaIos);
  if (!port->init(256, 200, 2).is_ok()) {
    std::fprintf(stderr, "port init failed\n");
    return 1;
  }
  // Safari on Cycada cannot JIT (the Mach VM bug, paper §9).
  webkit::Browser browser(*port, /*jit_enabled=*/false);

  std::printf("Safari on Cycada — browsing top sites\n");
  int rendered_correctly = 0;
  const auto sites = top_sites();
  for (const auto& site : sites) {
    if (!browser.load(site.markup).is_ok()) {
      std::printf("  %-8s FAILED to load\n", site.name);
      continue;
    }
    const Image screen = browser.screen();
    const std::string shot = std::string("safari_") + site.name + ".ppm";
    (void)screen.write_ppm(shot);
    ++rendered_correctly;
    std::printf("  %-8s loaded, %4zu paint rects, %3zu text runs -> %s\n",
                site.name, browser.display_list().rects.size(),
                browser.display_list().text_runs.size(), shot.c_str());
  }
  std::printf("  %d/%zu sites rendered\n\n", rendered_correctly, sites.size());

  const int acid = browser.acid_score();
  std::printf("Acid conformance: %d/100 %s\n\n", acid,
              acid == 100 ? "(pass)" : "(FAIL)");

  std::printf("SunSpider (crypto category) in Safari on Cycada:\n");
  auto score =
      browser.run_script(jsvm::sunspider::source_for("crypto"));
  if (score.is_ok()) {
    std::printf("  checksum %.0f, results page rendered (%d frames total)\n",
                *score, browser.frames_rendered());
  } else {
    std::printf("  script failed: %s\n", score.status().to_string().c_str());
  }
  return acid == 100 ? 0 : 1;
}
