// The paper's §8 scenario: an iOS game that renders its scene with GLES v1
// fixed-function calls while a WebKit view renders an HTML "about" page with
// GLES v2 — two GLES API versions live in ONE process. Stock Android locks
// a process to a single vendor GLES connection; Cycada's dynamic library
// replication gives each EAGLContext its own replica of the whole vendor
// stack, so both versions run side by side.
#include <cmath>
#include <cstdio>

#include "glport/system_config.h"
#include "ios_gl/eagl.h"
#include "ios_gl/gles.h"
#include "linker/linker.h"
#include "android_gl/vendor.h"
#include "webkit/browser.h"

using namespace cycada;
using namespace cycada::ios_gl;

namespace {

// The GLES1 game scene: a spinning "ship" (triangle fan) over a starfield.
void render_game_frame(int frame) {
  glClearColor(0.01f, 0.01f, 0.05f, 1.f);
  glClear(glcore::GL_COLOR_BUFFER_BIT);
  glMatrixMode(glcore::GL_PROJECTION);
  glLoadIdentity();
  glOrthof(-1.f, 1.f, -1.f, 1.f, -1.f, 1.f);
  glMatrixMode(glcore::GL_MODELVIEW);
  glLoadIdentity();

  glEnableClientState(glcore::GL_VERTEX_ARRAY);
  // Stars.
  glColor4f(1.f, 1.f, 0.9f, 1.f);
  glPointSize(2.f);
  float stars[32];
  for (int i = 0; i < 16; ++i) {
    stars[2 * i] = std::sin(i * 2.39996f) * (0.2f + 0.05f * i);
    stars[2 * i + 1] = std::cos(i * 2.39996f) * (0.2f + 0.05f * i);
  }
  glVertexPointer(2, glcore::GL_FLOAT, 0, stars);
  glDrawArrays(glcore::GL_POINTS, 0, 16);
  // Ship.
  glPushMatrix();
  glRotatef(frame * 12.f, 0.f, 0.f, 1.f);
  glScalef(0.4f, 0.4f, 1.f);
  glColor4f(0.9f, 0.4f, 0.1f, 1.f);
  const float ship[] = {0.f, 1.f, -0.7f, -0.8f, 0.f, -0.4f, 0.7f, -0.8f};
  glVertexPointer(2, glcore::GL_FLOAT, 0, ship);
  glDrawArrays(glcore::GL_TRIANGLE_FAN, 0, 4);
  glPopMatrix();
  glDisableClientState(glcore::GL_VERTEX_ARRAY);
}

}  // namespace

int main() {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);

  // GLES v1 context for the game (its own vendor-stack replica).
  auto game = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES1,
                                         /*drawable*/ 96, 96);
  if (!game.is_ok()) {
    std::fprintf(stderr, "game context failed\n");
    return 1;
  }
  EAGLContext::set_current_context(*game);
  GLuint fbo = 0, rbo = 0;
  glGenFramebuffers(1, &fbo);
  glGenRenderbuffers(1, &rbo);
  glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
  (void)(*game)->renderbuffer_storage_from_drawable(rbo, CAEAGLLayer{96, 96});
  glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
  glFramebufferRenderbuffer(glcore::GL_FRAMEBUFFER,
                            glcore::GL_COLOR_ATTACHMENT0,
                            glcore::GL_RENDERBUFFER, rbo);
  glViewport(0, 0, 96, 96);

  // GLES v2 WebKit view for the "about" page — SAME process, different
  // EAGLContext, different GLES version.
  auto web_port = glport::make_ios_port();
  if (!web_port->init(160, 120, 2).is_ok()) {
    std::fprintf(stderr, "web view failed (version lock not bypassed?)\n");
    return 1;
  }
  webkit::Browser about(*web_port, /*jit_enabled=*/false);
  (void)about.load(
      "<body bg=#10141c><h1 color=#ffb000>About</h1>"
      "<p color=#c0c8d0>Star Courier 1.0 — rendered with OpenGL ES 1.1."
      " This page is rendered with OpenGL ES 2.0 via WebKit, in the same"
      " process, thanks to dynamic library replication.</p></body>");

  // Animate the game while the about page stays up.
  for (int frame = 0; frame < 30; ++frame) {
    EAGLContext::set_current_context(*game);
    glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
    render_game_frame(frame);
    (void)(*game)->present_renderbuffer(rbo);
  }

  (void)(*game)->screen_snapshot().write_ppm("game_gles1.ppm");
  (void)about.screen().write_ppm("about_gles2.ppm");

  linker::Linker& linker = linker::Linker::instance();
  std::printf("Multi-version game (paper §8)\n");
  std::printf("  GLES1 game frames:     30 (game_gles1.ppm)\n");
  std::printf("  GLES2 about page:      rendered (about_gles2.ppm)\n");
  std::printf("  vendor GLES copies:    %d (1 shared + 1 per EAGLContext)\n",
              linker.live_copy_count(android_gl::kVendorGlesLib));
  std::printf("  libui_wrapper copies:  %d\n",
              linker.live_copy_count(android_gl::kUiWrapperLib));
  std::printf("  game GL errors:        %s\n",
              glGetError() == glcore::GL_NO_ERROR ? "none" : "present!");
  EAGLContext::clear_current_context();
  return 0;
}
