// A photo-gallery app exercising the paper's §6 and §7 machinery together:
// IOSurfaces shared between a CPU 2D path and GLES textures (the
// IOSurfaceLock/Unlock multi-diplomat dance on every edit), and GCD-style
// background jobs that render with the main thread's EAGL context (thread
// impersonation + TLS migration on a worker thread).
#include <cmath>
#include <cstdio>

#include "dispatch/dispatch.h"
#include "glport/system_config.h"
#include "ios_gl/eagl.h"
#include "ios_gl/gles.h"
#include "iosurface/iosurface.h"

using namespace cycada;
using namespace cycada::ios_gl;

namespace {

// Draws a procedural "photo" into a locked IOSurface using the CPU.
void develop_photo(const iosurface::IOSurfaceRef& surface, int seed) {
  if (!iosurface::IOSurfaceLock(surface).is_ok()) return;
  auto* pixels = static_cast<std::uint32_t*>(
      iosurface::IOSurfaceGetBaseAddress(surface));
  const int stride =
      static_cast<int>(iosurface::IOSurfaceGetBytesPerRow(surface) / 4);
  for (int y = 0; y < surface->height(); ++y) {
    for (int x = 0; x < surface->width(); ++x) {
      const double v = std::sin(x * 0.3 + seed) * std::cos(y * 0.2 + seed);
      const auto c = static_cast<std::uint32_t>(127.0 + 120.0 * v);
      pixels[y * stride + x] =
          (c) | ((255 - c) << 8) | (((c * seed) & 0xff) << 16) | 0xff000000u;
    }
  }
  (void)iosurface::IOSurfaceUnlock(surface);
}

}  // namespace

int main() {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);

  auto context = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2,
                                            /*drawable*/ 128, 128);
  if (!context.is_ok()) {
    std::fprintf(stderr, "context failed\n");
    return 1;
  }
  EAGLContext::set_current_context(*context);
  GLuint fbo = 0, rbo = 0;
  glGenFramebuffers(1, &fbo);
  glGenRenderbuffers(1, &rbo);
  glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
  (void)(*context)->renderbuffer_storage_from_drawable(rbo,
                                                       CAEAGLLayer{128, 128});
  glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
  glFramebufferRenderbuffer(glcore::GL_FRAMEBUFFER,
                            glcore::GL_COLOR_ATTACHMENT0,
                            glcore::GL_RENDERBUFFER, rbo);
  glViewport(0, 0, 128, 128);

  // Four photos: IOSurfaces bound as GLES textures (zero-copy, §6).
  constexpr int kPhotos = 4;
  iosurface::IOSurfaceRef photos[kPhotos];
  GLuint textures[kPhotos];
  glGenTextures(kPhotos, textures);
  for (int i = 0; i < kPhotos; ++i) {
    photos[i] = iosurface::IOSurfaceCreate({.width = 48, .height = 48});
    (void)(*context)->tex_image_io_surface(photos[i], textures[i]);
  }

  // GCD: background "darkroom" jobs develop photos on a worker thread while
  // adopting the main thread's EAGL context (paper §7). Each develop locks
  // the texture-bound surface, which runs the §6.2 disassociate/reassociate
  // dance under the hood.
  dispatch::DispatchQueue darkroom("com.gallery.darkroom");
  for (int i = 0; i < kPhotos; ++i) {
    darkroom.async([&, i] { develop_photo(photos[i], i + 1); });
  }
  darkroom.drain();

  // Composite the gallery grid on the GPU and present.
  const char* vs_src =
      "attribute vec4 a_position; attribute vec2 a_texcoord;"
      "uniform mat4 u_mvp; varying vec2 v_uv;"
      "void main() { gl_Position = u_mvp * a_position; v_uv = a_texcoord; }";
  const char* fs_src =
      "uniform sampler2D u_tex; varying vec2 v_uv;"
      "void main() { gl_FragColor = texture2D(u_tex, v_uv); }";
  const GLuint vs = glCreateShader(glcore::GL_VERTEX_SHADER);
  const GLuint fs = glCreateShader(glcore::GL_FRAGMENT_SHADER);
  glShaderSource(vs, 1, &vs_src, nullptr);
  glShaderSource(fs, 1, &fs_src, nullptr);
  glCompileShader(vs);
  glCompileShader(fs);
  const GLuint program = glCreateProgram();
  glAttachShader(program, vs);
  glAttachShader(program, fs);
  glLinkProgram(program);
  glUseProgram(program);
  const float identity[16] = {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1};
  glUniformMatrix4fv(0, 1, glcore::GL_FALSE, identity);
  glClearColor(0.12f, 0.12f, 0.14f, 1.f);
  glClear(glcore::GL_COLOR_BUFFER_BIT);
  glEnableVertexAttribArray(0);
  glEnableVertexAttribArray(2);
  const float uv[] = {0, 0, 1, 0, 1, 1, 0, 0, 1, 1, 0, 1};
  for (int i = 0; i < kPhotos; ++i) {
    const float x0 = -0.95f + (i % 2) * 1.0f;
    const float y0 = 0.95f - (i / 2) * 1.0f;
    const float x1 = x0 + 0.9f;
    const float y1 = y0 - 0.9f;
    const float quad[] = {x0, y0, x1, y0, x1, y1, x0, y0, x1, y1, x0, y1};
    glBindTexture(glcore::GL_TEXTURE_2D, textures[i]);
    glVertexAttribPointer(0, 2, glcore::GL_FLOAT, glcore::GL_FALSE, 0, quad);
    glVertexAttribPointer(2, 2, glcore::GL_FLOAT, glcore::GL_FALSE, 0, uv);
    glDrawArrays(glcore::GL_TRIANGLES, 0, 6);
  }
  (void)(*context)->present_renderbuffer(rbo);

  const Image screen = (*context)->screen_snapshot();
  (void)screen.write_ppm("gallery.ppm");
  std::printf("Photo gallery (IOSurface + GCD on Cycada)\n");
  std::printf("  photos developed:   %d (on a GCD worker thread)\n", kPhotos);
  std::printf("  live IOSurfaces:    %zu\n",
              iosurface::LinuxCoreSurface::instance().live_surfaces());
  std::printf("  darkroom jobs:      %llu completed\n",
              static_cast<unsigned long long>(darkroom.jobs_completed()));
  std::printf("  GL errors:          %s\n",
              glGetError() == glcore::GL_NO_ERROR ? "none" : "present!");
  std::printf("  screenshot:         gallery.ppm (center=0x%08x)\n",
              screen.at(30, 30));
  EAGLContext::clear_current_context();
  return 0;
}
