# Empty compiler generated dependencies file for cycada_glport.
# This may be replaced when dependencies are built.
