file(REMOVE_RECURSE
  "libcycada_glport.a"
)
