file(REMOVE_RECURSE
  "CMakeFiles/cycada_glport.dir/android_port.cpp.o"
  "CMakeFiles/cycada_glport.dir/android_port.cpp.o.d"
  "CMakeFiles/cycada_glport.dir/ios_port.cpp.o"
  "CMakeFiles/cycada_glport.dir/ios_port.cpp.o.d"
  "CMakeFiles/cycada_glport.dir/system_config.cpp.o"
  "CMakeFiles/cycada_glport.dir/system_config.cpp.o.d"
  "libcycada_glport.a"
  "libcycada_glport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_glport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
