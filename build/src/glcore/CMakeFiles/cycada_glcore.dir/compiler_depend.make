# Empty compiler generated dependencies file for cycada_glcore.
# This may be replaced when dependencies are built.
