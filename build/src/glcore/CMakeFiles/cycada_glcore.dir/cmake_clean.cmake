file(REMOVE_RECURSE
  "CMakeFiles/cycada_glcore.dir/api_registry.cpp.o"
  "CMakeFiles/cycada_glcore.dir/api_registry.cpp.o.d"
  "CMakeFiles/cycada_glcore.dir/engine.cpp.o"
  "CMakeFiles/cycada_glcore.dir/engine.cpp.o.d"
  "CMakeFiles/cycada_glcore.dir/engine_draw.cpp.o"
  "CMakeFiles/cycada_glcore.dir/engine_draw.cpp.o.d"
  "CMakeFiles/cycada_glcore.dir/engine_extra.cpp.o"
  "CMakeFiles/cycada_glcore.dir/engine_extra.cpp.o.d"
  "libcycada_glcore.a"
  "libcycada_glcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_glcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
