file(REMOVE_RECURSE
  "libcycada_glcore.a"
)
