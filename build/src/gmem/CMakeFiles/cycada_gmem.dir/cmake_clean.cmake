file(REMOVE_RECURSE
  "CMakeFiles/cycada_gmem.dir/graphic_buffer.cpp.o"
  "CMakeFiles/cycada_gmem.dir/graphic_buffer.cpp.o.d"
  "libcycada_gmem.a"
  "libcycada_gmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_gmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
