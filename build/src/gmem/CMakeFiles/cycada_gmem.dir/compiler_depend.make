# Empty compiler generated dependencies file for cycada_gmem.
# This may be replaced when dependencies are built.
