file(REMOVE_RECURSE
  "libcycada_gmem.a"
)
