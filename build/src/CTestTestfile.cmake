# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("kernel")
subdirs("linker")
subdirs("gpu")
subdirs("gmem")
subdirs("glcore")
subdirs("android_gl")
subdirs("core")
subdirs("iosurface")
subdirs("ios_gl")
subdirs("dispatch")
subdirs("glport")
subdirs("jsvm")
subdirs("webkit")
subdirs("passmark")
