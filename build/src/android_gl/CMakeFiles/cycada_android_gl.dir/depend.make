# Empty dependencies file for cycada_android_gl.
# This may be replaced when dependencies are built.
