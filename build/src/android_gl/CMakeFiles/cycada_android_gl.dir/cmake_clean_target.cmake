file(REMOVE_RECURSE
  "libcycada_android_gl.a"
)
