file(REMOVE_RECURSE
  "CMakeFiles/cycada_android_gl.dir/egl.cpp.o"
  "CMakeFiles/cycada_android_gl.dir/egl.cpp.o.d"
  "CMakeFiles/cycada_android_gl.dir/surface_flinger.cpp.o"
  "CMakeFiles/cycada_android_gl.dir/surface_flinger.cpp.o.d"
  "CMakeFiles/cycada_android_gl.dir/ui_wrapper.cpp.o"
  "CMakeFiles/cycada_android_gl.dir/ui_wrapper.cpp.o.d"
  "CMakeFiles/cycada_android_gl.dir/vendor.cpp.o"
  "CMakeFiles/cycada_android_gl.dir/vendor.cpp.o.d"
  "libcycada_android_gl.a"
  "libcycada_android_gl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_android_gl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
