# CMake generated Testfile for 
# Source directory: /root/repo/src/android_gl
# Build directory: /root/repo/build/src/android_gl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
