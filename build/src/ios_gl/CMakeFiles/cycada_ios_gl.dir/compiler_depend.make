# Empty compiler generated dependencies file for cycada_ios_gl.
# This may be replaced when dependencies are built.
