file(REMOVE_RECURSE
  "CMakeFiles/cycada_ios_gl.dir/eagl.cpp.o"
  "CMakeFiles/cycada_ios_gl.dir/eagl.cpp.o.d"
  "CMakeFiles/cycada_ios_gl.dir/egl_bridge.cpp.o"
  "CMakeFiles/cycada_ios_gl.dir/egl_bridge.cpp.o.d"
  "CMakeFiles/cycada_ios_gl.dir/gles.cpp.o"
  "CMakeFiles/cycada_ios_gl.dir/gles.cpp.o.d"
  "CMakeFiles/cycada_ios_gl.dir/platform.cpp.o"
  "CMakeFiles/cycada_ios_gl.dir/platform.cpp.o.d"
  "libcycada_ios_gl.a"
  "libcycada_ios_gl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_ios_gl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
