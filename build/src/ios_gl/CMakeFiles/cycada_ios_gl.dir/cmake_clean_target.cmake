file(REMOVE_RECURSE
  "libcycada_ios_gl.a"
)
