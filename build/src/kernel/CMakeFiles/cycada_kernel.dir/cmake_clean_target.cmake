file(REMOVE_RECURSE
  "libcycada_kernel.a"
)
