file(REMOVE_RECURSE
  "CMakeFiles/cycada_kernel.dir/kernel.cpp.o"
  "CMakeFiles/cycada_kernel.dir/kernel.cpp.o.d"
  "libcycada_kernel.a"
  "libcycada_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
