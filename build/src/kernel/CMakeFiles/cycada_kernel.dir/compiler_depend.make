# Empty compiler generated dependencies file for cycada_kernel.
# This may be replaced when dependencies are built.
