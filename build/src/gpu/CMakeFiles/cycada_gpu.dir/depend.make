# Empty dependencies file for cycada_gpu.
# This may be replaced when dependencies are built.
