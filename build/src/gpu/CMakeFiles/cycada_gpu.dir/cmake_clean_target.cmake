file(REMOVE_RECURSE
  "libcycada_gpu.a"
)
