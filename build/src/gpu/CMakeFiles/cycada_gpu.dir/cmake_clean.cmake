file(REMOVE_RECURSE
  "CMakeFiles/cycada_gpu.dir/device.cpp.o"
  "CMakeFiles/cycada_gpu.dir/device.cpp.o.d"
  "CMakeFiles/cycada_gpu.dir/raster.cpp.o"
  "CMakeFiles/cycada_gpu.dir/raster.cpp.o.d"
  "libcycada_gpu.a"
  "libcycada_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
