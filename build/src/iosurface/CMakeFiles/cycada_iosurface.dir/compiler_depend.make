# Empty compiler generated dependencies file for cycada_iosurface.
# This may be replaced when dependencies are built.
