file(REMOVE_RECURSE
  "libcycada_iosurface.a"
)
