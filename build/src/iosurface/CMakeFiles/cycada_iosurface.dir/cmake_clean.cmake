file(REMOVE_RECURSE
  "CMakeFiles/cycada_iosurface.dir/iosurface.cpp.o"
  "CMakeFiles/cycada_iosurface.dir/iosurface.cpp.o.d"
  "libcycada_iosurface.a"
  "libcycada_iosurface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_iosurface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
