file(REMOVE_RECURSE
  "CMakeFiles/cycada_util.dir/image.cpp.o"
  "CMakeFiles/cycada_util.dir/image.cpp.o.d"
  "CMakeFiles/cycada_util.dir/log.cpp.o"
  "CMakeFiles/cycada_util.dir/log.cpp.o.d"
  "CMakeFiles/cycada_util.dir/pixel.cpp.o"
  "CMakeFiles/cycada_util.dir/pixel.cpp.o.d"
  "libcycada_util.a"
  "libcycada_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
