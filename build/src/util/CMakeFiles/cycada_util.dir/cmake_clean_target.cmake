file(REMOVE_RECURSE
  "libcycada_util.a"
)
