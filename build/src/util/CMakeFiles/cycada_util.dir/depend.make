# Empty dependencies file for cycada_util.
# This may be replaced when dependencies are built.
