# Empty dependencies file for cycada_core.
# This may be replaced when dependencies are built.
