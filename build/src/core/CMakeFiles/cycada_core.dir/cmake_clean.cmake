file(REMOVE_RECURSE
  "CMakeFiles/cycada_core.dir/classification.cpp.o"
  "CMakeFiles/cycada_core.dir/classification.cpp.o.d"
  "CMakeFiles/cycada_core.dir/diplomat.cpp.o"
  "CMakeFiles/cycada_core.dir/diplomat.cpp.o.d"
  "CMakeFiles/cycada_core.dir/impersonation.cpp.o"
  "CMakeFiles/cycada_core.dir/impersonation.cpp.o.d"
  "libcycada_core.a"
  "libcycada_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
