file(REMOVE_RECURSE
  "libcycada_core.a"
)
