# Empty compiler generated dependencies file for cycada_webkit.
# This may be replaced when dependencies are built.
