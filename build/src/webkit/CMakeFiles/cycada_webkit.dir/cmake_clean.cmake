file(REMOVE_RECURSE
  "CMakeFiles/cycada_webkit.dir/browser.cpp.o"
  "CMakeFiles/cycada_webkit.dir/browser.cpp.o.d"
  "CMakeFiles/cycada_webkit.dir/document.cpp.o"
  "CMakeFiles/cycada_webkit.dir/document.cpp.o.d"
  "CMakeFiles/cycada_webkit.dir/layout.cpp.o"
  "CMakeFiles/cycada_webkit.dir/layout.cpp.o.d"
  "CMakeFiles/cycada_webkit.dir/raster.cpp.o"
  "CMakeFiles/cycada_webkit.dir/raster.cpp.o.d"
  "libcycada_webkit.a"
  "libcycada_webkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_webkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
