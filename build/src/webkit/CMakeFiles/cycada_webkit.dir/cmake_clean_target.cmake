file(REMOVE_RECURSE
  "libcycada_webkit.a"
)
