file(REMOVE_RECURSE
  "CMakeFiles/cycada_passmark.dir/passmark.cpp.o"
  "CMakeFiles/cycada_passmark.dir/passmark.cpp.o.d"
  "libcycada_passmark.a"
  "libcycada_passmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_passmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
