# Empty compiler generated dependencies file for cycada_passmark.
# This may be replaced when dependencies are built.
