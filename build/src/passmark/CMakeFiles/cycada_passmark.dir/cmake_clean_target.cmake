file(REMOVE_RECURSE
  "libcycada_passmark.a"
)
