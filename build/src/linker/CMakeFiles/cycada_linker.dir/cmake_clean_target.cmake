file(REMOVE_RECURSE
  "libcycada_linker.a"
)
