# Empty compiler generated dependencies file for cycada_linker.
# This may be replaced when dependencies are built.
