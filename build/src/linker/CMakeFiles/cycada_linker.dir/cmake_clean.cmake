file(REMOVE_RECURSE
  "CMakeFiles/cycada_linker.dir/linker.cpp.o"
  "CMakeFiles/cycada_linker.dir/linker.cpp.o.d"
  "libcycada_linker.a"
  "libcycada_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
