file(REMOVE_RECURSE
  "libcycada_dispatch.a"
)
