# Empty compiler generated dependencies file for cycada_dispatch.
# This may be replaced when dependencies are built.
