
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dispatch/dispatch.cpp" "src/dispatch/CMakeFiles/cycada_dispatch.dir/dispatch.cpp.o" "gcc" "src/dispatch/CMakeFiles/cycada_dispatch.dir/dispatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ios_gl/CMakeFiles/cycada_ios_gl.dir/DependInfo.cmake"
  "/root/repo/build/src/iosurface/CMakeFiles/cycada_iosurface.dir/DependInfo.cmake"
  "/root/repo/build/src/android_gl/CMakeFiles/cycada_android_gl.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/cycada_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cycada_core.dir/DependInfo.cmake"
  "/root/repo/build/src/glcore/CMakeFiles/cycada_glcore.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cycada_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/cycada_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/gmem/CMakeFiles/cycada_gmem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cycada_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
