file(REMOVE_RECURSE
  "CMakeFiles/cycada_dispatch.dir/dispatch.cpp.o"
  "CMakeFiles/cycada_dispatch.dir/dispatch.cpp.o.d"
  "libcycada_dispatch.a"
  "libcycada_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
