file(REMOVE_RECURSE
  "CMakeFiles/cycada_jsvm.dir/builtins.cpp.o"
  "CMakeFiles/cycada_jsvm.dir/builtins.cpp.o.d"
  "CMakeFiles/cycada_jsvm.dir/bytecode.cpp.o"
  "CMakeFiles/cycada_jsvm.dir/bytecode.cpp.o.d"
  "CMakeFiles/cycada_jsvm.dir/interpreter.cpp.o"
  "CMakeFiles/cycada_jsvm.dir/interpreter.cpp.o.d"
  "CMakeFiles/cycada_jsvm.dir/parser.cpp.o"
  "CMakeFiles/cycada_jsvm.dir/parser.cpp.o.d"
  "CMakeFiles/cycada_jsvm.dir/regex.cpp.o"
  "CMakeFiles/cycada_jsvm.dir/regex.cpp.o.d"
  "CMakeFiles/cycada_jsvm.dir/sunspider.cpp.o"
  "CMakeFiles/cycada_jsvm.dir/sunspider.cpp.o.d"
  "libcycada_jsvm.a"
  "libcycada_jsvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycada_jsvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
