# Empty dependencies file for cycada_jsvm.
# This may be replaced when dependencies are built.
