
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jsvm/builtins.cpp" "src/jsvm/CMakeFiles/cycada_jsvm.dir/builtins.cpp.o" "gcc" "src/jsvm/CMakeFiles/cycada_jsvm.dir/builtins.cpp.o.d"
  "/root/repo/src/jsvm/bytecode.cpp" "src/jsvm/CMakeFiles/cycada_jsvm.dir/bytecode.cpp.o" "gcc" "src/jsvm/CMakeFiles/cycada_jsvm.dir/bytecode.cpp.o.d"
  "/root/repo/src/jsvm/interpreter.cpp" "src/jsvm/CMakeFiles/cycada_jsvm.dir/interpreter.cpp.o" "gcc" "src/jsvm/CMakeFiles/cycada_jsvm.dir/interpreter.cpp.o.d"
  "/root/repo/src/jsvm/parser.cpp" "src/jsvm/CMakeFiles/cycada_jsvm.dir/parser.cpp.o" "gcc" "src/jsvm/CMakeFiles/cycada_jsvm.dir/parser.cpp.o.d"
  "/root/repo/src/jsvm/regex.cpp" "src/jsvm/CMakeFiles/cycada_jsvm.dir/regex.cpp.o" "gcc" "src/jsvm/CMakeFiles/cycada_jsvm.dir/regex.cpp.o.d"
  "/root/repo/src/jsvm/sunspider.cpp" "src/jsvm/CMakeFiles/cycada_jsvm.dir/sunspider.cpp.o" "gcc" "src/jsvm/CMakeFiles/cycada_jsvm.dir/sunspider.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cycada_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
