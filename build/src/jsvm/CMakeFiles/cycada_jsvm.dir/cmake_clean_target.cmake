file(REMOVE_RECURSE
  "libcycada_jsvm.a"
)
