# Empty compiler generated dependencies file for cycada_tests.
# This may be replaced when dependencies are built.
