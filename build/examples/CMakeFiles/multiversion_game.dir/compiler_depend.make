# Empty compiler generated dependencies file for multiversion_game.
# This may be replaced when dependencies are built.
