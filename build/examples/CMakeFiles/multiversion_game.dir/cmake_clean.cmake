file(REMOVE_RECURSE
  "CMakeFiles/multiversion_game.dir/multiversion_game.cpp.o"
  "CMakeFiles/multiversion_game.dir/multiversion_game.cpp.o.d"
  "multiversion_game"
  "multiversion_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiversion_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
