file(REMOVE_RECURSE
  "CMakeFiles/android_compositor.dir/android_compositor.cpp.o"
  "CMakeFiles/android_compositor.dir/android_compositor.cpp.o.d"
  "android_compositor"
  "android_compositor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_compositor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
