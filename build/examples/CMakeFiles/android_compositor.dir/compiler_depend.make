# Empty compiler generated dependencies file for android_compositor.
# This may be replaced when dependencies are built.
