# Empty compiler generated dependencies file for safari_browser.
# This may be replaced when dependencies are built.
