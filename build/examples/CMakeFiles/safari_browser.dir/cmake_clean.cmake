file(REMOVE_RECURSE
  "CMakeFiles/safari_browser.dir/safari_browser.cpp.o"
  "CMakeFiles/safari_browser.dir/safari_browser.cpp.o.d"
  "safari_browser"
  "safari_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safari_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
