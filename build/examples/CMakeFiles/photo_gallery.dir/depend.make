# Empty dependencies file for photo_gallery.
# This may be replaced when dependencies are built.
