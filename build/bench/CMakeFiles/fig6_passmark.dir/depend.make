# Empty dependencies file for fig6_passmark.
# This may be replaced when dependencies are built.
