file(REMOVE_RECURSE
  "CMakeFiles/fig6_passmark.dir/fig6_passmark.cpp.o"
  "CMakeFiles/fig6_passmark.dir/fig6_passmark.cpp.o.d"
  "fig6_passmark"
  "fig6_passmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_passmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
