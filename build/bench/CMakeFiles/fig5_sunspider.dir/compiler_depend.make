# Empty compiler generated dependencies file for fig5_sunspider.
# This may be replaced when dependencies are built.
