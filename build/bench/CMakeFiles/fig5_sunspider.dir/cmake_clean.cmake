file(REMOVE_RECURSE
  "CMakeFiles/fig5_sunspider.dir/fig5_sunspider.cpp.o"
  "CMakeFiles/fig5_sunspider.dir/fig5_sunspider.cpp.o.d"
  "fig5_sunspider"
  "fig5_sunspider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sunspider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
