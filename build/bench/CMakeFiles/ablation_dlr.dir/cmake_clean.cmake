file(REMOVE_RECURSE
  "CMakeFiles/ablation_dlr.dir/ablation_dlr.cpp.o"
  "CMakeFiles/ablation_dlr.dir/ablation_dlr.cpp.o.d"
  "ablation_dlr"
  "ablation_dlr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
