# Empty dependencies file for ablation_dlr.
# This may be replaced when dependencies are built.
