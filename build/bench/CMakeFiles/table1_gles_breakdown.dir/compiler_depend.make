# Empty compiler generated dependencies file for table1_gles_breakdown.
# This may be replaced when dependencies are built.
