file(REMOVE_RECURSE
  "CMakeFiles/table1_gles_breakdown.dir/table1_gles_breakdown.cpp.o"
  "CMakeFiles/table1_gles_breakdown.dir/table1_gles_breakdown.cpp.o.d"
  "table1_gles_breakdown"
  "table1_gles_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_gles_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
