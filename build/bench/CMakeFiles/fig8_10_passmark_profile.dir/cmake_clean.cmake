file(REMOVE_RECURSE
  "CMakeFiles/fig8_10_passmark_profile.dir/fig8_10_passmark_profile.cpp.o"
  "CMakeFiles/fig8_10_passmark_profile.dir/fig8_10_passmark_profile.cpp.o.d"
  "fig8_10_passmark_profile"
  "fig8_10_passmark_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_10_passmark_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
