# Empty compiler generated dependencies file for fig8_10_passmark_profile.
# This may be replaced when dependencies are built.
