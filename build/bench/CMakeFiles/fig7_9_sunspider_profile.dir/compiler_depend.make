# Empty compiler generated dependencies file for fig7_9_sunspider_profile.
# This may be replaced when dependencies are built.
