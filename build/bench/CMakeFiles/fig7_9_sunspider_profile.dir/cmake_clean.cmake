file(REMOVE_RECURSE
  "CMakeFiles/fig7_9_sunspider_profile.dir/fig7_9_sunspider_profile.cpp.o"
  "CMakeFiles/fig7_9_sunspider_profile.dir/fig7_9_sunspider_profile.cpp.o.d"
  "fig7_9_sunspider_profile"
  "fig7_9_sunspider_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_9_sunspider_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
