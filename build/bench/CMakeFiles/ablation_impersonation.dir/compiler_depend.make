# Empty compiler generated dependencies file for ablation_impersonation.
# This may be replaced when dependencies are built.
