file(REMOVE_RECURSE
  "CMakeFiles/ablation_impersonation.dir/ablation_impersonation.cpp.o"
  "CMakeFiles/ablation_impersonation.dir/ablation_impersonation.cpp.o.d"
  "ablation_impersonation"
  "ablation_impersonation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_impersonation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
