# Empty compiler generated dependencies file for table2_diplomat_breakdown.
# This may be replaced when dependencies are built.
