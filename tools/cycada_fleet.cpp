// cycada_fleet: hosts N independent iOS app sessions in one process and
// drives them concurrently (docs/SESSIONS.md).
//
//   cycada_fleet [--sessions N] [--frames M] [--test NAME]
//                [--replay file.cyt] [--paced] [--verify] [--keep]
//
// Each worker thread creates a core::Session, binds to it, registers an
// iOS persona with the session's own kernel, and runs the PassMark
// workload against a port whose whole stack — linker, EGL wrapper
// replicas, GPU device, compositor — is that session's private facet set.
// An optional .cyt trace (golden corpus) replays inside every session as
// extra load before the measured frames, paced with --paced.
//
// --verify gates the run: every session's final screen must hash
// byte-identical (FNV-1a 64) to a reference render in the default session,
// no session may error, every session must tear down (live count back to
// the default only), and the cross-session leak evidence must stay zero.
// --keep skips session destruction (leak-diagnosis aid; fails --verify).
//
// The run emits fleet.* counters (aggregate throughput, p50/p99 frame
// latency) as cycada-bench/v1 JSON, CYCADA_BENCH_JSON honored
// (docs/BENCHMARKING.md). Exits 0 on success, 1 on verification failure,
// 2 on usage/load errors.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/impersonation.h"
#include "core/replay.h"
#include "core/session.h"
#include "glport/system_config.h"
#include "kernel/kernel.h"
#include "passmark/passmark.h"
#include "trace/cyt.h"
#include "trace/metrics.h"
#include "util/clock.h"
#include "util/image.h"

namespace {

using namespace cycada;

struct FleetOptions {
  int sessions = 8;
  int frames = 8;
  std::string test;  // empty = first PassMark spec
  std::string replay_path;
  bool paced = false;
  bool verify = false;
  bool keep = false;
};

struct WorkerResult {
  bool ok = false;
  std::string error;
  std::uint64_t primitives = 0;
  std::uint64_t screen_hash = 0;
  std::uint64_t replay_calls = 0;
  std::vector<std::int64_t> frame_ns;
};

std::uint64_t fnv1a_hash(const Image& image) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const std::uint32_t pixel : image.pixels()) {
    for (int byte = 0; byte < 4; ++byte) {
      hash ^= (pixel >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

// One app run: init a 128x128 iOS port in the *current* session, warm up,
// then render `frames` measured frames one at a time (per-frame latency is
// the fleet's p99 input). The same sequence renders the reference, so the
// hashes compare byte-for-byte.
bool run_app(const FleetOptions& options, std::string_view test,
             WorkerResult& out) {
  auto port = glport::make_ios_port();
  const Status init = port->init(128, 128, 1);
  if (!init.is_ok()) {
    out.error = "port init: " + init.to_string();
    return false;
  }
  passmark::PassMark passmark(*port);
  if (!passmark.run(test, 1).is_ok()) {  // warm-up (texture/mesh setup)
    out.error = "warm-up frame failed";
    return false;
  }
  for (int frame = 0; frame < options.frames; ++frame) {
    const std::int64_t start = now_ns();
    auto primitives = passmark.run(test, 1);
    if (!primitives.is_ok()) {
      out.error = "frame " + std::to_string(frame) + ": " +
                  primitives.status().to_string();
      return false;
    }
    out.frame_ns.push_back(now_ns() - start);
    out.primitives += *primitives;
  }
  const Image screen = port->screen();
  if (screen.empty()) {
    out.error = "empty final screen";
    return false;
  }
  out.screen_hash = fnv1a_hash(screen);
  return true;
}

// Everything a fleet member does inside its session binding. Split out so
// the scope (and with it the port, contexts, TLS) unwinds before the
// session is destroyed.
void run_session_body(const FleetOptions& options, std::string_view test,
                      const trace::ParsedTrace* trace, core::Session& session,
                      WorkerResult& out) {
  core::SessionScope scope(session);
  kernel::Kernel::instance().register_current_thread(kernel::Persona::kIos);
  core::GraphicsTlsTracker::instance().install();
  if (trace != nullptr) {
    core::ReplayOptions replay;
    replay.paced = options.paced;
    auto stats = core::replay_trace(*trace, replay);
    if (!stats.is_ok()) {
      out.error = "replay: " + stats.status().to_string();
      return;
    }
    out.replay_calls = stats->calls;
  }
  out.ok = run_app(options, test, out);
}

int usage() {
  std::fprintf(stderr,
               "usage: cycada_fleet [--sessions N] [--frames M] "
               "[--test NAME] [--replay file.cyt] [--paced] [--verify] "
               "[--keep]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  FleetOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      options.sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      options.frames = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--test") == 0 && i + 1 < argc) {
      options.test = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      options.replay_path = argv[++i];
    } else if (std::strcmp(argv[i], "--paced") == 0) {
      options.paced = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      options.verify = true;
    } else if (std::strcmp(argv[i], "--keep") == 0) {
      options.keep = true;
    } else {
      return usage();
    }
  }
  if (options.sessions < 1 || options.frames < 1) return usage();

  trace::ParsedTrace trace;
  bool have_trace = false;
  if (!options.replay_path.empty()) {
    auto parsed = trace::read_cyt(options.replay_path);
    if (!parsed.is_ok()) {
      std::fprintf(stderr, "cycada_fleet: %s: %s\n",
                   options.replay_path.c_str(),
                   parsed.status().to_string().c_str());
      return 2;
    }
    trace = std::move(*parsed);
    have_trace = true;
  }

  // Process-global setup runs exactly once, in the default session; fleet
  // sessions never call apply_system_config (it resets cross-session
  // infrastructure like the shared dispatch table and metrics).
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);

  const auto& specs = passmark::test_specs();
  std::string test = options.test.empty() ? std::string(specs.front().name)
                                          : options.test;
  bool known = false;
  for (const auto& spec : specs) known = known || spec.name == test;
  if (!known) {
    std::fprintf(stderr, "cycada_fleet: unknown PassMark test '%s'\n",
                 test.c_str());
    return 2;
  }

  // Reference render in the default session: the byte-correctness oracle
  // every fleet session is compared against.
  WorkerResult reference;
  if (!run_app(options, test, reference)) {
    std::fprintf(stderr, "cycada_fleet: reference render failed: %s\n",
                 reference.error.c_str());
    return 2;
  }

  core::SessionRegistry& registry = core::SessionRegistry::instance();
  const std::size_t live_before = registry.live_count();

  std::vector<WorkerResult> results(
      static_cast<std::size_t>(options.sessions));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(options.sessions));
  const std::int64_t wall_start_ns = now_ns();
  for (int i = 0; i < options.sessions; ++i) {
    workers.emplace_back([&, i] {
      WorkerResult& out = results[static_cast<std::size_t>(i)];
      auto session = registry.create("fleet-" + std::to_string(i));
      if (!session.is_ok()) {
        out.error = "session create: " + session.status().to_string();
        return;
      }
      run_session_body(options, test, have_trace ? &trace : nullptr,
                       **session, out);
      if (!options.keep) registry.destroy(*session);
    });
  }
  for (std::thread& worker : workers) worker.join();
  const std::int64_t wall_ns = now_ns() - wall_start_ns;

  // Aggregate: every session's per-frame latencies into one distribution.
  std::vector<std::int64_t> latencies;
  std::uint64_t frames_total = 0;
  std::uint64_t primitives_total = 0;
  std::uint64_t replay_calls_total = 0;
  int errored = 0;
  int hash_mismatches = 0;
  for (int i = 0; i < options.sessions; ++i) {
    const WorkerResult& r = results[static_cast<std::size_t>(i)];
    if (!r.ok) {
      ++errored;
      std::fprintf(stderr, "cycada_fleet: session fleet-%d FAILED: %s\n", i,
                   r.error.c_str());
      continue;
    }
    if (r.screen_hash != reference.screen_hash) {
      ++hash_mismatches;
      std::fprintf(stderr,
                   "cycada_fleet: session fleet-%d screen hash %016llx != "
                   "reference %016llx\n",
                   i, static_cast<unsigned long long>(r.screen_hash),
                   static_cast<unsigned long long>(reference.screen_hash));
    }
    frames_total += r.frame_ns.size();
    primitives_total += r.primitives;
    replay_calls_total += r.replay_calls;
    latencies.insert(latencies.end(), r.frame_ns.begin(), r.frame_ns.end());
  }
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) -> std::int64_t {
    if (latencies.empty()) return 0;
    const std::size_t index = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(latencies.size())));
    return latencies[index];
  };
  const std::int64_t p50_ns = percentile(0.50);
  const std::int64_t p99_ns = percentile(0.99);
  const std::int64_t worst_ns = latencies.empty() ? 0 : latencies.back();
  const double fps = wall_ns > 0 ? static_cast<double>(frames_total) * 1e9 /
                                       static_cast<double>(wall_ns)
                                 : 0.0;
  const std::size_t live_after = registry.live_count();
  std::uint64_t cross_leaks = 0;
  for (const auto& leak : registry.cross_leak_snapshot()) {
    cross_leaks += leak.count;
  }

  std::printf("cycada_fleet: %d session(s) x %d frame(s) of '%s'%s\n",
              options.sessions, options.frames, test.c_str(),
              have_trace ? " (+trace replay load)" : "");
  std::printf(
      "  %llu frame(s) in %.3f ms: %.1f frames/s aggregate, "
      "%llu primitive(s)\n",
      static_cast<unsigned long long>(frames_total),
      static_cast<double>(wall_ns) / 1e6, fps,
      static_cast<unsigned long long>(primitives_total));
  std::printf("  frame latency p50 %.3f ms, p99 %.3f ms, worst %.3f ms\n",
              static_cast<double>(p50_ns) / 1e6,
              static_cast<double>(p99_ns) / 1e6,
              static_cast<double>(worst_ns) / 1e6);
  if (have_trace) {
    std::printf("  %llu replayed call(s) across the fleet\n",
                static_cast<unsigned long long>(replay_calls_total));
  }
  std::printf(
      "  sessions: %llu created / %llu destroyed total, %zu -> %zu live, "
      "%llu cross-leak(s)\n",
      static_cast<unsigned long long>(registry.created_total()),
      static_cast<unsigned long long>(registry.destroyed_total()),
      live_before, live_after, static_cast<unsigned long long>(cross_leaks));

  trace::MetricsSnapshot doc;
  auto put = [&doc](const char* name, std::uint64_t value) {
    doc.counters.push_back({name, value});
  };
  put("fleet.sessions", static_cast<std::uint64_t>(options.sessions));
  put("fleet.frames", frames_total);
  put("fleet.wall_ns", static_cast<std::uint64_t>(wall_ns));
  put("fleet.frames_per_sec_x1000", static_cast<std::uint64_t>(fps * 1000.0));
  put("fleet.primitives", primitives_total);
  put("fleet.frame_p50_ns", static_cast<std::uint64_t>(p50_ns));
  put("fleet.frame_p99_ns", static_cast<std::uint64_t>(p99_ns));
  put("fleet.frame_worst_ns", static_cast<std::uint64_t>(worst_ns));
  put("fleet.errors", static_cast<std::uint64_t>(errored));
  put("fleet.hash_mismatches", static_cast<std::uint64_t>(hash_mismatches));
  put("fleet.cross_leaks", cross_leaks);
  if (have_trace) put("fleet.replay_calls", replay_calls_total);
  trace::emit_bench_json(std::cout, doc.to_json());

  if (options.verify) {
    const bool leaked = !options.keep && live_after != live_before;
    const bool pass = errored == 0 && hash_mismatches == 0 && !leaked &&
                      cross_leaks == 0;
    std::printf(
        "cycada_fleet: verify %s (%d errored, %d hash mismatch(es), "
        "%s, %llu cross-leak(s))\n",
        pass ? "PASS" : "FAIL", errored, hash_mismatches,
        leaked ? "sessions leaked" : "sessions torn down",
        static_cast<unsigned long long>(cross_leaks));
    return pass ? 0 : 1;
  }
  return errored == 0 ? 0 : 1;
}
