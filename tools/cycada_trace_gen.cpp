// cycada_trace_gen: deterministic .cyt capture for the golden test corpus
// (docs/TRACING.md, tests/data/).
//
//   cycada_trace_gen <out.cyt> [--frames N]
//
// Boots the simulated Cycada device and records a small, single-threaded
// PassMark-shaped workload: EAGL setup, shader compile/link, batched state
// runs under a BatchScope, a draw + present per frame, a data-dependent
// query (skip path) — and one deliberately UN-batched run of
// classifier-batchable scalar state calls, so analyze::check_trace always
// has at least one actionable batchability candidate to report on this
// corpus. Single-threaded and fixed-sequence: replaying the capture at
// N×M multiplies every per-diplomat count exactly.
//
// Exits 0 on success, 2 on errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/batch.h"
#include "glport/system_config.h"
#include "ios_gl/eagl.h"
#include "ios_gl/gles.h"
#include "trace/cyt.h"

namespace {

using namespace cycada;
using namespace cycada::ios_gl;

bool render_frame(EAGLContext::Ref context, int size, int frame) {
  EAGLContext::set_current_context(context);
  GLuint fbo = 0, rbo = 0;
  glGenFramebuffers(1, &fbo);
  glGenRenderbuffers(1, &rbo);
  glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
  if (!context->renderbuffer_storage_from_drawable(rbo,
                                                   CAEAGLLayer{size, size})
           .is_ok()) {
    return false;
  }
  glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
  glFramebufferRenderbuffer(glcore::GL_FRAMEBUFFER,
                            glcore::GL_COLOR_ATTACHMENT0,
                            glcore::GL_RENDERBUFFER, rbo);

  const char* vs_src =
      "attribute vec4 a_position; void main() { gl_Position = a_position; }";
  const char* fs_src = "void main() { gl_FragColor = vec4(1.0); }";
  const GLuint vs = glCreateShader(glcore::GL_VERTEX_SHADER);
  const GLuint fs = glCreateShader(glcore::GL_FRAGMENT_SHADER);
  glShaderSource(vs, 1, &vs_src, nullptr);
  glShaderSource(fs, 1, &fs_src, nullptr);
  glCompileShader(vs);
  glCompileShader(fs);
  const GLuint program = glCreateProgram();
  glAttachShader(program, vs);
  glAttachShader(program, fs);
  glLinkProgram(program);
  glUseProgram(program);

  {
    // The batched stretch: the PassMark-style same-direction state run the
    // command buffer exists for (kBatchedCall records + one kBatchFlush).
    core::BatchScope scope;
    glViewport(0, 0, size, size);
    glClearColor(0.1f, 0.2f, 0.3f, 1.f);
    glEnable(glcore::GL_BLEND);
    glBlendFunc(glcore::GL_SRC_ALPHA, glcore::GL_ONE_MINUS_SRC_ALPHA);
    glDepthMask(glcore::GL_TRUE);
    glCullFace(glcore::GL_BACK);
    glFrontFace(glcore::GL_CCW);
    glDisable(glcore::GL_BLEND);
    glClear(glcore::GL_COLOR_BUFFER_BIT);
  }

  const float positions[] = {-0.9f, -0.8f, 0.9f, -0.8f, 0.f, 0.9f};
  glEnableVertexAttribArray(0);
  glVertexAttribPointer(0, 2, glcore::GL_FLOAT, glcore::GL_FALSE, 0,
                        positions);
  glDrawArrays(glcore::GL_TRIANGLES, 0, 3);

  // The deliberately un-batched run: scalar void state calls the classifier
  // marks batchable, crossing one by one with no BatchScope open. This is
  // the trace miner's bread and butter — it must flag this run as a
  // batchability candidate (tests/trace_replay_test.cpp pins that).
  for (int i = 0; i < 4; ++i) {
    glLineWidth(1.0f + static_cast<float>((frame + i) % 3));
    glPolygonOffset(static_cast<float>(i), 0.5f);
  }

  // Data-dependent skip path (answered on the iOS side).
  (void)glGetString(glcore::GL_VENDOR);
  if (!context->present_renderbuffer(rbo).is_ok()) return false;
  return glGetError() == glcore::GL_NO_ERROR;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  int frames = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-' && out.empty()) {
      out = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: cycada_trace_gen <out.cyt> [--frames N]\n");
      return 2;
    }
  }
  if (out.empty() || frames < 1) {
    std::fprintf(stderr, "usage: cycada_trace_gen <out.cyt> [--frames N]\n");
    return 2;
  }

  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  trace::TraceRecorder& recorder = trace::TraceRecorder::instance();
  if (const Status status = recorder.start(out); !status.is_ok()) {
    std::fprintf(stderr, "cycada_trace_gen: %s\n",
                 status.to_string().c_str());
    return 2;
  }

  auto context =
      EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2, 64, 64);
  if (!context.is_ok()) {
    std::fprintf(stderr, "cycada_trace_gen: workload boot failed\n");
    return 2;
  }
  for (int frame = 0; frame < frames; ++frame) {
    if (!render_frame(*context, 64, frame)) {
      std::fprintf(stderr, "cycada_trace_gen: frame %d failed\n", frame);
      return 2;
    }
  }
  EAGLContext::clear_current_context();

  const std::uint64_t recorded = recorder.recorded();
  const std::uint64_t dropped = recorder.dropped();
  if (const Status status = recorder.stop(); !status.is_ok()) {
    std::fprintf(stderr, "cycada_trace_gen: finalize failed: %s\n",
                 status.to_string().c_str());
    return 2;
  }
  std::printf("cycada_trace_gen: %s: %llu record(s), %llu dropped, %d "
              "frame(s)\n",
              out.c_str(), static_cast<unsigned long long>(recorded),
              static_cast<unsigned long long>(dropped), frames);
  return dropped == 0 ? 0 : 2;
}
