// cycada_trace_gen: deterministic .cyt capture for the golden test corpus
// (docs/TRACING.md, tests/data/).
//
//   cycada_trace_gen <out.cyt> [--frames N] [--workload passmark|sunspider]
//                    [--scripts N]
//
// Boots the simulated Cycada device and records a small, single-threaded
// workload. The default PassMark shape: EAGL setup, shader compile/link,
// batched state runs under a BatchScope, a draw + present per frame, a
// data-dependent query (skip path) — and one deliberately UN-batched run of
// scalar void state calls (some classifier-batchable, some conservatively
// unbatched), so analyze::check_trace always has actionable batchability
// candidates and the classification prover has amendment material on this
// corpus. Single-threaded and fixed-sequence: replaying the capture at
// N×M multiplies every per-diplomat count exactly.
//
// --workload sunspider instead drives the simulated WebKit browser over the
// first --scripts SunSpider categories on the Cycada-iOS port (the Figure 5
// workload shape), capturing the diplomat stream its page renders produce.
//
// Exits 0 on success, 2 on errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/batch.h"
#include "glport/system_config.h"
#include "ios_gl/eagl.h"
#include "ios_gl/gles.h"
#include "jsvm/sunspider.h"
#include "trace/cyt.h"
#include "webkit/browser.h"

namespace {

using namespace cycada;
using namespace cycada::ios_gl;

bool render_frame(EAGLContext::Ref context, int size, int frame) {
  EAGLContext::set_current_context(context);
  GLuint fbo = 0, rbo = 0;
  glGenFramebuffers(1, &fbo);
  glGenRenderbuffers(1, &rbo);
  glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
  if (!context->renderbuffer_storage_from_drawable(rbo,
                                                   CAEAGLLayer{size, size})
           .is_ok()) {
    return false;
  }
  glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
  glFramebufferRenderbuffer(glcore::GL_FRAMEBUFFER,
                            glcore::GL_COLOR_ATTACHMENT0,
                            glcore::GL_RENDERBUFFER, rbo);

  const char* vs_src =
      "attribute vec4 a_position; void main() { gl_Position = a_position; }";
  const char* fs_src = "void main() { gl_FragColor = vec4(1.0); }";
  const GLuint vs = glCreateShader(glcore::GL_VERTEX_SHADER);
  const GLuint fs = glCreateShader(glcore::GL_FRAGMENT_SHADER);
  glShaderSource(vs, 1, &vs_src, nullptr);
  glShaderSource(fs, 1, &fs_src, nullptr);
  glCompileShader(vs);
  glCompileShader(fs);
  const GLuint program = glCreateProgram();
  glAttachShader(program, vs);
  glAttachShader(program, fs);
  glLinkProgram(program);
  // Detach after link, iOS-app style. glDetachShader is conservatively
  // unbatched, but two calls per frame stay BELOW the prover's confidence
  // threshold — a deliberate below-the-bar candidate for the tests.
  glDetachShader(program, vs);
  glDetachShader(program, fs);
  glUseProgram(program);

  {
    // The batched stretch: the PassMark-style same-direction state run the
    // command buffer exists for (kBatchedCall records + one kBatchFlush).
    core::BatchScope scope;
    glViewport(0, 0, size, size);
    glClearColor(0.1f, 0.2f, 0.3f, 1.f);
    glEnable(glcore::GL_BLEND);
    glBlendFunc(glcore::GL_SRC_ALPHA, glcore::GL_ONE_MINUS_SRC_ALPHA);
    glDepthMask(glcore::GL_TRUE);
    glCullFace(glcore::GL_BACK);
    glFrontFace(glcore::GL_CCW);
    glDisable(glcore::GL_BLEND);
    glClear(glcore::GL_COLOR_BUFFER_BIT);
  }

  const float positions[] = {-0.9f, -0.8f, 0.9f, -0.8f, 0.f, 0.9f};
  glEnableVertexAttribArray(0);
  glVertexAttribPointer(0, 2, glcore::GL_FLOAT, glcore::GL_FALSE, 0,
                        positions);
  glDrawArrays(glcore::GL_TRIANGLES, 0, 3);

  // The deliberately un-batched run: scalar void state calls the classifier
  // marks batchable, crossing one by one with no BatchScope open. This is
  // the trace miner's bread and butter — it must flag this run as a
  // batchability candidate (tests/trace_replay_test.cpp pins that).
  // glBlendColor / glSampleCoverage ride the same runs but are NOT in the
  // hand-written batchable table: four per frame puts them over the
  // prover's confidence threshold, so they graduate into replay-proved
  // amendment proposals (cycada_check --classify).
  for (int i = 0; i < 4; ++i) {
    glLineWidth(1.0f + static_cast<float>((frame + i) % 3));
    glPolygonOffset(static_cast<float>(i), 0.5f);
    glBlendColor(0.1f * static_cast<float>(i), 0.2f, 0.3f, 1.f);
    glSampleCoverage(1.0f - 0.1f * static_cast<float>(i), glcore::GL_FALSE);
  }

  // Data-dependent skip path (answered on the iOS side).
  (void)glGetString(glcore::GL_VENDOR);
  if (!context->present_renderbuffer(rbo).is_ok()) return false;
  return glGetError() == glcore::GL_NO_ERROR;
}

// The SunSpider shape (Figure 5): the simulated browser runs each category
// script and renders the results page through the Cycada-iOS port, so every
// GL call the raster path makes crosses the diplomat bridge and lands in
// the capture. JIT off, as on real Cycada iOS (§9). `scripts` bounds the
// categories so the fixed-size capture pool never drops records.
bool run_sunspider(int scripts) {
  auto port = glport::make_gl_port(glport::SystemConfig::kCycadaIos);
  if (!port->init(192, 160, 2).is_ok()) return false;
  webkit::Browser browser(*port, /*jit=*/false);
  int run = 0;
  for (const auto& workload : jsvm::sunspider::workloads()) {
    if (run >= scripts) break;
    if (!browser.run_script(workload.source).is_ok()) return false;
    ++run;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  static const char kUsage[] =
      "usage: cycada_trace_gen <out.cyt> [--frames N] "
      "[--workload passmark|sunspider] [--scripts N]\n";
  std::string out;
  std::string workload = "passmark";
  int frames = 3;
  int scripts = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      workload = argv[++i];
    } else if (std::strcmp(argv[i], "--scripts") == 0 && i + 1 < argc) {
      scripts = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-' && out.empty()) {
      out = argv[i];
    } else {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
  }
  if (out.empty() || frames < 1 || scripts < 1 ||
      (workload != "passmark" && workload != "sunspider")) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  trace::TraceRecorder& recorder = trace::TraceRecorder::instance();
  if (const Status status = recorder.start(out); !status.is_ok()) {
    std::fprintf(stderr, "cycada_trace_gen: %s\n",
                 status.to_string().c_str());
    return 2;
  }

  if (workload == "sunspider") {
    if (!run_sunspider(scripts)) {
      std::fprintf(stderr, "cycada_trace_gen: sunspider workload failed\n");
      return 2;
    }
  } else {
    auto context =
        EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2, 64, 64);
    if (!context.is_ok()) {
      std::fprintf(stderr, "cycada_trace_gen: workload boot failed\n");
      return 2;
    }
    for (int frame = 0; frame < frames; ++frame) {
      if (!render_frame(*context, 64, frame)) {
        std::fprintf(stderr, "cycada_trace_gen: frame %d failed\n", frame);
        return 2;
      }
    }
    EAGLContext::clear_current_context();
  }

  const std::uint64_t recorded = recorder.recorded();
  const std::uint64_t dropped = recorder.dropped();
  if (const Status status = recorder.stop(); !status.is_ok()) {
    std::fprintf(stderr, "cycada_trace_gen: finalize failed: %s\n",
                 status.to_string().c_str());
    return 2;
  }
  std::printf("cycada_trace_gen: %s: %llu record(s), %llu dropped (%s)\n",
              out.c_str(), static_cast<unsigned long long>(recorded),
              static_cast<unsigned long long>(dropped), workload.c_str());
  return dropped == 0 ? 0 : 2;
}
