// cycada_check: the contract analyzer binary (DESIGN.md §6).
//
// Boots the simulated Cycada device, runs a representative iOS-app workload
// (EAGL + GLES2 rendering across two contexts, so diplomats fire, replicas
// are minted and graphics TLS keys exist), then asserts every layer
// contract over the evidence: diplomat counters, the lock acquisition
// graph, DLR replica isolation, TLS-migration completeness, and — when
// --root is given — the static source lint.
//
//   cycada_check [--root <source-dir>] [--trace <file.cyt>]...
//   cycada_check --classify --root <source-dir> [--corpus <file.cyt>]...
//                [--amend-out <path>]
//
// --trace switches to trace-mining mode (docs/TRACING.md): instead of
// running the live workload, each named .cyt capture is loaded and judged
// with analyze::check_trace. Contract violations are findings (gating);
// batchability candidates are printed as advisory notes and never gate.
//
// --classify runs the classification prover (docs/ANALYZER.md): the static
// scanner over the IOS_GL dispatch sites under --root and the --corpus
// traces are cross-checked against src/core/classification.cpp; any
// contradiction is a blocking finding, and surviving static+corpus
// agreements become replay-proved amendment proposals, written to
// --amend-out as a loadable CYCADA_CLASSIFY_AMEND file.
//
// Exits 0 when every check is clean, 1 when there are findings (each
// printed one per line), 2 on usage/workload errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "glport/system_config.h"
#include "ios_gl/eagl.h"
#include "ios_gl/gles.h"
#include "trace/metrics.h"
#include "util/faultpoint.h"
#include "util/lock_order.h"

namespace {

using namespace cycada;
using namespace cycada::ios_gl;

// One EAGL frame, written the way an iOS app would write it (the quickstart
// path): offscreen FBO backed by a drawable, gradient triangle, present.
bool render_frame(EAGLContext::Ref context, int size) {
  EAGLContext::set_current_context(context);
  GLuint fbo = 0, rbo = 0;
  glGenFramebuffers(1, &fbo);
  glGenRenderbuffers(1, &rbo);
  glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
  if (!context->renderbuffer_storage_from_drawable(rbo,
                                                   CAEAGLLayer{size, size})
           .is_ok()) {
    return false;
  }
  glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
  glFramebufferRenderbuffer(glcore::GL_FRAMEBUFFER,
                            glcore::GL_COLOR_ATTACHMENT0,
                            glcore::GL_RENDERBUFFER, rbo);
  glViewport(0, 0, size, size);

  const char* vs_src =
      "attribute vec4 a_position; attribute vec4 a_color; uniform mat4 u_mvp;"
      "varying vec4 v_color;"
      "void main() { gl_Position = u_mvp * a_position; v_color = a_color; }";
  const char* fs_src =
      "varying vec4 v_color; void main() { gl_FragColor = v_color; }";
  const GLuint vs = glCreateShader(glcore::GL_VERTEX_SHADER);
  const GLuint fs = glCreateShader(glcore::GL_FRAGMENT_SHADER);
  glShaderSource(vs, 1, &vs_src, nullptr);
  glShaderSource(fs, 1, &fs_src, nullptr);
  glCompileShader(vs);
  glCompileShader(fs);
  const GLuint program = glCreateProgram();
  glAttachShader(program, vs);
  glAttachShader(program, fs);
  glLinkProgram(program);
  glUseProgram(program);
  const float identity[16] = {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1};
  glUniformMatrix4fv(glGetUniformLocation(program, "u_mvp"), 1,
                     glcore::GL_FALSE, identity);

  glClearColor(0.08f, 0.08f, 0.12f, 1.f);
  glClear(glcore::GL_COLOR_BUFFER_BIT);
  const float positions[] = {-0.9f, -0.8f, 0.9f, -0.8f, 0.f, 0.9f};
  const float colors[] = {1, 0, 0, 1, 0, 1, 0, 1, 0, 0, 1, 1};
  glEnableVertexAttribArray(0);
  glEnableVertexAttribArray(1);
  glVertexAttribPointer(0, 2, glcore::GL_FLOAT, glcore::GL_FALSE, 0,
                        positions);
  glVertexAttribPointer(1, 4, glcore::GL_FLOAT, glcore::GL_FALSE, 0, colors);
  glDrawArrays(glcore::GL_TRIANGLES, 0, 3);

  // Exercise the data-dependent skip paths too (Apple-proprietary queries
  // answered on the iOS side).
  (void)glGetString(glcore::GL_VENDOR);
  if (!context->present_renderbuffer(rbo).is_ok()) return false;
  return glGetError() == glcore::GL_NO_ERROR;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> traces;
  std::vector<std::string> corpus_paths;
  std::string amend_out;
  bool classify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      traces.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--classify") == 0) {
      classify = true;
    } else if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc) {
      corpus_paths.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--amend-out") == 0 && i + 1 < argc) {
      amend_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: cycada_check [--root <source-dir>] "
                   "[--trace <file.cyt>]...\n"
                   "       cycada_check --classify --root <source-dir> "
                   "[--corpus <file.cyt>]... [--amend-out <path>]\n");
      return 2;
    }
  }

  // Classification-prover mode (docs/ANALYZER.md).
  if (classify) {
    if (root.empty()) {
      std::fprintf(stderr, "cycada_check: --classify requires --root\n");
      return 2;
    }
    const std::string gl_source = root + "/ios_gl/gles.cpp";
    std::ifstream file(gl_source);
    if (!file) {
      std::fprintf(stderr, "cycada_check: cannot read %s\n",
                   gl_source.c_str());
      return 2;
    }
    std::ostringstream contents;
    contents << file.rdbuf();

    std::vector<trace::ParsedTrace> parsed;
    parsed.reserve(corpus_paths.size());
    for (const std::string& path : corpus_paths) {
      auto trace = trace::read_cyt(path);
      if (!trace.is_ok()) {
        std::fprintf(stderr, "cycada_check: %s: %s\n", path.c_str(),
                     trace.status().to_string().c_str());
        return 2;
      }
      parsed.push_back(*std::move(trace));
    }
    std::vector<const trace::ParsedTrace*> corpus;
    for (const trace::ParsedTrace& trace : parsed) corpus.push_back(&trace);

    // The replay proof drives real diplomat calls, so the simulated device
    // must be up before check_classification runs.
    if (!corpus.empty()) {
      glport::apply_system_config(glport::SystemConfig::kCycadaIos);
    }

    analyze::Report report;
    const analyze::ClassifyAudit audit = analyze::check_classification(
        gl_source, contents.str(), corpus, report);
    std::printf(
        "cycada_check: classify: %zu dispatch site(s) in %s, %zu corpus "
        "trace(s)\n",
        audit.sites.size(), gl_source.c_str(), audit.corpus_traces);
    for (const analyze::AmendmentProposal& proposal : audit.proposals) {
      std::printf("note: amendment proposal batchable %s — %s\n",
                  proposal.name.c_str(), proposal.why.c_str());
    }
    if (!amend_out.empty() && !audit.proposals.empty()) {
      std::ofstream out(amend_out);
      if (!out) {
        std::fprintf(stderr, "cycada_check: cannot write %s\n",
                     amend_out.c_str());
        return 2;
      }
      out << analyze::render_classification_amendments(audit.proposals);
      std::printf("cycada_check: wrote %zu amendment(s) to %s\n",
                  audit.proposals.size(), amend_out.c_str());
    }
    const int findings = report.print(std::cout);
    std::printf("cycada_check: %d finding(s), %zu amendment proposal(s)\n",
                findings, audit.proposals.size());
    return findings == 0 ? 0 : 1;
  }

  // Trace-mining mode: judge captured streams, not the live workload.
  if (!traces.empty()) {
    analyze::Report report;
    std::size_t candidates = 0;
    for (const std::string& path : traces) {
      auto trace = trace::read_cyt(path);
      if (!trace.is_ok()) {
        std::fprintf(stderr, "cycada_check: %s: %s\n", path.c_str(),
                     trace.status().to_string().c_str());
        return 2;
      }
      const analyze::TraceAudit audit =
          analyze::check_trace(*trace, report);
      std::printf(
          "cycada_check: %s: %llu event(s), %llu call(s), %llu dropped\n",
          path.c_str(), static_cast<unsigned long long>(audit.events),
          static_cast<unsigned long long>(audit.calls),
          static_cast<unsigned long long>(trace->dropped));
      for (const analyze::BatchCandidate& candidate : audit.candidates) {
        // Advisory, deliberately not a Finding: leads, not violations.
        std::printf(
            "note: batchable-run candidate %s: %llu call(s), longest run "
            "%llu — %s\n",
            candidate.name.c_str(),
            static_cast<unsigned long long>(candidate.occurrences),
            static_cast<unsigned long long>(candidate.longest_run),
            candidate.why.c_str());
      }
      candidates += audit.candidates.size();
    }
    const int findings = report.print(std::cout);
    std::printf(
        "cycada_check: %d finding(s), %zu batchability candidate(s) over "
        "%zu trace(s)\n",
        findings, candidates, traces.size());
    return findings == 0 ? 0 : 1;
  }

  // Record every lock acquisition from boot onward.
  util::LockOrderGraph& lock_graph = util::LockOrderGraph::instance();
  lock_graph.reset();
  lock_graph.set_recording(true);

  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  analyze::TlsAudit::instance().install();

  // The workload: two EAGL contexts, so the bridge mints two vendor-stack
  // replicas and the second frame runs against a different connection.
  auto first = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2, 64, 64);
  auto second =
      EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2, 48, 48);
  if (!first.is_ok() || !second.is_ok()) {
    std::fprintf(stderr, "cycada_check: workload boot failed\n");
    return 2;
  }
  if (!render_frame(*first, 64) || !render_frame(*second, 48)) {
    std::fprintf(stderr, "cycada_check: workload rendering failed\n");
    return 2;
  }

  // Judge the evidence while the replicas are still live.
  analyze::Report report;
  analyze::check_diplomat_contracts(report);
  analyze::check_lock_order(report);
  analyze::check_replica_isolation(report);
  analyze::check_tls_migration(report);
  analyze::check_fault_safety(report);
  if (!root.empty()) analyze::lint_source_tree(root, report);

  EAGLContext::clear_current_context();
  lock_graph.set_recording(false);

  const int findings = report.print(std::cout);
  std::printf("cycada_check: %d finding(s), %zu lock edge(s) observed%s\n",
              findings, lock_graph.edges().size(),
              root.empty() ? "" : ", source lint on");

  // Under fault injection, show what fired and how the pipeline degraded —
  // the evidence that the workload survived rather than dodged the faults.
  if (std::getenv("CYCADA_FAULT") != nullptr) {
    std::printf("cycada_check: fault injection on (CYCADA_FAULT=%s)\n",
                std::getenv("CYCADA_FAULT"));
    std::printf("  context degraded: first=%s second=%s\n",
                first.value()->degraded() ? "yes" : "no",
                second.value()->degraded() ? "yes" : "no");
    for (const util::FaultPointInfo& info :
         util::FaultRegistry::instance().snapshot()) {
      if (info.hits == 0 && info.stalls == 0) continue;
      std::printf("  fault %s: %llu hit(s), %llu fire(s), %llu stall(s)\n",
                  info.name.c_str(),
                  static_cast<unsigned long long>(info.hits),
                  static_cast<unsigned long long>(info.fires),
                  static_cast<unsigned long long>(info.stalls));
    }
    for (const trace::CounterSnapshot& counter :
         trace::MetricsRegistry::instance().snapshot().counters) {
      const bool interesting =
          counter.name.rfind("degrade.", 0) == 0 ||
          counter.name.rfind("replica.pool.", 0) == 0;
      if (interesting && counter.value > 0) {
        std::printf("  %s: %llu\n", counter.name.c_str(),
                    static_cast<unsigned long long>(counter.value));
      }
    }
  }
  return findings == 0 ? 0 : 1;
}
