// cycada_replay: re-drives a captured .cyt diplomat stream as load
// (docs/TRACING.md).
//
//   cycada_replay <file.cyt> [--threads N] [--iterations M] [--paced]
//                 [--verify]
//
// Boots the simulated Cycada device, loads the trace and replays it through
// the real dispatch/batch/persona machinery on N threads × M iterations —
// max-rate by default, timestamp-faithful with --paced. The run emits the
// same counters/histograms as the live benches (CYCADA_BENCH_JSON honored),
// so a replayed PassMark capture is a first-class bench workload.
//
// --verify compares the replay against the recording: per-diplomat registry
// call counts must equal the trace's counts × N × M exactly, and
// crossings-per-call must be within 5% of what the recorded stream costs
// live. Divergence prints trace.replay-divergence findings and exits 1.
//
// Exits 0 on success, 1 on verification failure, 2 on usage/load errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "analyze/analyze.h"
#include "core/diplomat.h"
#include "core/replay.h"
#include "glport/system_config.h"
#include "trace/cyt.h"
#include "trace/metrics.h"

namespace {

using namespace cycada;

std::map<std::string, std::uint64_t> registry_call_counts() {
  std::map<std::string, std::uint64_t> counts;
  for (const core::DiplomatSnapshot& s :
       core::DiplomatRegistry::instance().snapshot()) {
    if (s.calls != 0) counts[s.name] = s.calls;
  }
  return counts;
}

int usage() {
  std::fprintf(stderr,
               "usage: cycada_replay <file.cyt> [--threads N] "
               "[--iterations M] [--paced] [--verify]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  core::ReplayOptions options;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      options.iterations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--paced") == 0) {
      options.paced = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (argv[i][0] != '-' && path.empty()) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path.empty() || options.threads < 1 || options.iterations < 1) {
    return usage();
  }

  auto trace = trace::read_cyt(path);
  if (!trace.is_ok()) {
    std::fprintf(stderr, "cycada_replay: %s: %s\n", path.c_str(),
                 trace.status().to_string().c_str());
    return 2;
  }

  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  // The boot workload is empty, but be explicit: deltas, not totals.
  const std::map<std::string, std::uint64_t> before = registry_call_counts();

  auto stats = core::replay_trace(*trace, options);
  if (!stats.is_ok()) {
    std::fprintf(stderr, "cycada_replay: %s\n",
                 stats.status().to_string().c_str());
    return 2;
  }

  const double wall_ms = static_cast<double>(stats->wall_ns) / 1e6;
  const double calls_per_sec =
      stats->wall_ns > 0 ? static_cast<double>(stats->calls) * 1e9 /
                               static_cast<double>(stats->wall_ns)
                         : 0.0;
  const std::int64_t recorded_ns = trace->duration_ns();
  // How much faster than the recording the replay drove the same stream
  // (threads × iterations copies of it). Paced runs sit near 1.0.
  const double speedup =
      stats->wall_ns > 0 && recorded_ns > 0
          ? static_cast<double>(recorded_ns) *
                static_cast<double>(options.threads * options.iterations) /
                static_cast<double>(stats->wall_ns)
          : 0.0;

  std::printf("cycada_replay: %s\n", path.c_str());
  std::printf(
      "  %d thread(s) x %d iteration(s), %d lane(s), %s\n", options.threads,
      options.iterations, stats->lanes, options.paced ? "paced" : "max-rate");
  std::printf(
      "  %llu call(s) (%llu batched, %llu flush(es), %llu skip(s)), "
      "%llu crossing(s)\n",
      static_cast<unsigned long long>(stats->calls),
      static_cast<unsigned long long>(stats->batched),
      static_cast<unsigned long long>(stats->flushes),
      static_cast<unsigned long long>(stats->skips),
      static_cast<unsigned long long>(stats->persona_switches));
  std::printf(
      "  wall %.3f ms, %.0f calls/s, %.3f crossings/call, speedup x%.2f\n",
      wall_ms, calls_per_sec, stats->crossings_per_call(), speedup);

  // The bench-facing counters. The *_x1000 fixed-point names follow the
  // bench_compare.sh conventions: *_ns gates lower-is-better, *speedup*
  // gates higher-is-better.
  trace::MetricsRegistry& metrics = trace::MetricsRegistry::instance();
  metrics.counter("replay.calls").set(stats->calls);
  metrics.counter("replay.batched").set(stats->batched);
  metrics.counter("replay.flushes").set(stats->flushes);
  metrics.counter("replay.crossings").set(stats->persona_switches);
  metrics.counter("replay.threads").set(
      static_cast<std::uint64_t>(options.threads));
  metrics.counter("replay.wall_ns").set(
      static_cast<std::uint64_t>(stats->wall_ns));
  metrics.counter("replay.crossings_per_call_x1000")
      .set(static_cast<std::uint64_t>(stats->crossings_per_call() * 1000.0));
  metrics.counter("replay.speedup_x1000")
      .set(static_cast<std::uint64_t>(speedup * 1000.0));

  int exit_code = 0;
  if (verify) {
    const std::uint64_t scale =
        static_cast<std::uint64_t>(options.threads) *
        static_cast<std::uint64_t>(options.iterations);
    std::map<std::string, std::uint64_t> expected =
        core::trace_call_counts(*trace);
    for (auto& [name, count] : expected) count *= scale;
    std::map<std::string, std::uint64_t> observed = registry_call_counts();
    for (const auto& [name, count] : before) {
      auto it = observed.find(name);
      if (it != observed.end()) {
        it->second -= count;
        if (it->second == 0) observed.erase(it);
      }
    }
    analyze::Report report;
    analyze::check_replay_divergence(expected, observed, report);

    const double expected_cpc =
        stats->calls == 0
            ? 0.0
            : static_cast<double>(core::trace_expected_crossings(*trace) *
                                  scale) /
                  static_cast<double>(stats->calls);
    const double cpc = stats->crossings_per_call();
    const bool cpc_ok =
        expected_cpc == 0.0 ||
        (cpc >= expected_cpc * 0.95 && cpc <= expected_cpc * 1.05);
    if (!cpc_ok) {
      report.add("trace", "trace.replay-divergence", path,
                 "crossings/call " + std::to_string(cpc) +
                     " is more than 5% away from the recorded stream's " +
                     std::to_string(expected_cpc));
    }
    const int findings = report.print(std::cout);
    std::printf(
        "cycada_replay: verify %s (%d finding(s); crossings/call %.3f vs "
        "recorded %.3f)\n",
        findings == 0 ? "PASS" : "FAIL", findings, cpc, expected_cpc);
    exit_code = findings == 0 ? 0 : 1;
  }

  metrics.dump_summary(std::cout);
  trace::emit_bench_json(std::cout, metrics.snapshot().to_json());
  return exit_code;
}
