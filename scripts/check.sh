#!/usr/bin/env bash
# Full verification matrix: tier-1 build + tests, the cycada_check contract
# analyzer, and the TSan/ASan/UBSan configurations (DESIGN.md §6).
# Exits non-zero on any finding. From the repo root:
#
#   ./scripts/check.sh            # everything
#   CYCADA_SKIP_SANITIZERS=1 ./scripts/check.sh   # tier-1 + cycada_check only
#   CYCADA_RUN_BENCH=1 ./scripts/check.sh         # also refresh BENCH_pr3.json
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

# --- Tier 1: default build, all tests, contract analyzer --------------------
run cmake -B build -S .
run cmake --build build -j
(cd build && run ctest --output-on-failure -j)
run ./build/tools/cycada_check --root "$(pwd)/src"

if [[ "${CYCADA_SKIP_SANITIZERS:-0}" == "1" ]]; then
  echo "check.sh: OK (sanitizers skipped)"
  exit 0
fi

# --- Sanitizer matrix --------------------------------------------------------
sanitizer_pass() {
  local name="$1" flag="$2"
  run cmake -B "build-${name}" -S . "-D${flag}=ON"
  run cmake --build "build-${name}" -j
  (cd "build-${name}" && run ctest --output-on-failure -j)
  run "./build-${name}/tools/cycada_check" --root "$(pwd)/src"
}

sanitizer_pass asan CYCADA_ASAN
sanitizer_pass ubsan CYCADA_UBSAN
sanitizer_pass tsan CYCADA_TSAN

# --- Optional: refresh the committed benchmark baseline ----------------------
if [[ "${CYCADA_RUN_BENCH:-0}" == "1" ]]; then
  run ./scripts/bench_baseline.sh
fi

echo "check.sh: OK"
