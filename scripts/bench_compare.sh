#!/usr/bin/env bash
# Compares two cycada-bench/v1 documents (docs/BENCHMARKING.md) and fails on
# performance regressions:
#
#   ./scripts/bench_compare.sh BENCH_prA.json BENCH_prB.json
#
# The first file is the baseline, the second the candidate. Gated metrics:
#   - timing counters (names containing "_ns"): lower is better; a candidate
#     more than the threshold above the baseline is a regression
#   - speedup counters (names containing "speedup"): higher is better
#   - histogram tails (p50_ns / p95_ns / p99_ns per histogram): lower is
#     better. min/max/sum are single-sample extremes or count-dependent and
#     stay informational.
# The per-stage pipeline profiles (pipeline.stage.*) are utilization
# diagnostics, not gates — single-run bucket noise swamps them; the gated
# pipeline signal is fig6.sweep.*.raster_speedup_x100. The chaos-soak
# escalation counters and stall histograms (soak.*, watchdog.*) measure
# injected faults and the recovery ladder's response, not code speed, so
# they are informational too — the blocking soak gate is the harness's own
# liveness/recovery asserts in ci.sh. Everything else is printed for
# information only. The relative threshold is CYCADA_BENCH_THRESHOLD
# (default 0.10 = 10%).
#
# Exits 0 when no gated metric regressed, 1 on regression, 2 on usage error.
set -euo pipefail

if [[ $# -ne 2 || ! -f "$1" || ! -f "$2" ]]; then
  echo "usage: bench_compare.sh <baseline.json> <candidate.json>" >&2
  exit 2
fi
THRESHOLD="${CYCADA_BENCH_THRESHOLD:-0.10}"

# Both documents must carry the cycada-bench/v1 schema tag. Comparing
# across schema generations silently produces nonsense, so fail loudly.
SCHEMA='"schema":"cycada-bench/v1"'
for doc in "$1" "$2"; do
  if ! tr -d ' \n' < "${doc}" | grep -qF "${SCHEMA}"; then
    echo "bench_compare: ${doc} is not a cycada-bench/v1 document" \
         "(missing ${SCHEMA}); refusing to compare" >&2
    exit 2
  fi
done

# Flattens one bench document to "key value" lines: counters as-is,
# histogram entries as <histogram>.<field>. Shell + awk only (no jq).
flatten() {
  tr -d ' \n' < "$1" | awk '
  {
    if (match($0, /"counters":\{[^}]*\}/)) {
      inner = substr($0, RSTART + 12, RLENGTH - 13)
      n = split(inner, kv, ",")
      for (i = 1; i <= n; i++) {
        if (split(kv[i], pair, ":") < 2) continue
        gsub(/"/, "", pair[1])
        print pair[1], pair[2]
      }
    }
    rest = $0
    if (match(rest, /"histograms":\{/)) {
      rest = substr(rest, RSTART + RLENGTH)
      while (match(rest, /"[^"]+":\{[^}]*\}/)) {
        entry = substr(rest, RSTART, RLENGTH)
        rest = substr(rest, RSTART + RLENGTH)
        match(entry, /^"[^"]+"/)
        name = substr(entry, 2, RLENGTH - 2)
        body = entry
        sub(/^"[^"]+":\{/, "", body)
        sub(/\}$/, "", body)
        m = split(body, kv, ",")
        for (j = 1; j <= m; j++) {
          if (split(kv[j], pair, ":") < 2) continue
          gsub(/"/, "", pair[1])
          print name "." pair[1], pair[2]
        }
      }
    }
  }'
}

baseline_flat="$(flatten "$1")"
candidate_flat="$(flatten "$2")"

awk -v threshold="${THRESHOLD}" \
    -v baseline_name="$1" -v candidate_name="$2" '
  NR == FNR { baseline[$1] = $2; next }
  { candidate[$1] = $2 }
  END {
    regressions = 0
    printf "bench_compare: %s -> %s (threshold %.0f%%)\n", \
      baseline_name, candidate_name, threshold * 100
    for (key in candidate) {
      if (!(key in baseline)) { only_candidate++; continue }
      old = baseline[key] + 0
      new = candidate[key] + 0
      delta = old != 0 ? (new - old) / old : 0
      # Gate direction: timing and tail-latency keys regress upward,
      # speedups regress downward; everything else is informational.
      # Histogram min/max/sum fields and the pipeline.stage.* profiles are
      # never gated (see the header).
      gated = ""
      # soak.* and watchdog.* keys measure injected faults and recovery
      # behaviour, not code speed — drift there is expected run to run.
      informational = (key ~ /\.(min|max|sum)_ns$/ || \
                       key ~ /pipeline\.stage\./ || \
                       key ~ /^soak\./ || key ~ /^watchdog\./)
      if (informational) {
      } else if (key ~ /_ns/ && key !~ /speedup/) {
        if (old > 0 && delta > threshold) gated = "REGRESSION"
      } else if (key ~ /speedup/) {
        if (old > 0 && delta < -threshold) gated = "REGRESSION"
      }
      if (gated != "") {
        printf "  %-48s %12d -> %12d  %+7.1f%%  %s\n", \
          key, old, new, delta * 100, gated
        regressions++
      } else if (old != 0 && (delta > threshold || delta < -threshold)) {
        printf "  %-48s %12d -> %12d  %+7.1f%%\n", key, old, new, delta * 100
      }
    }
    for (key in baseline) if (!(key in candidate)) only_baseline++
    if (only_baseline > 0)
      printf "  (%d metric(s) only in the baseline)\n", only_baseline
    if (only_candidate > 0)
      printf "  (%d metric(s) only in the candidate)\n", only_candidate
    if (regressions > 0) {
      printf "bench_compare: %d regression(s) beyond %.0f%%\n", \
        regressions, threshold * 100
      exit 1
    }
    print "bench_compare: no regressions"
  }
' <(printf '%s\n' "${baseline_flat}") <(printf '%s\n' "${candidate_flat}")
