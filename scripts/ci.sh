#!/usr/bin/env bash
# The CI entry point (.github/workflows/ci.yml runs exactly this): tier-1
# build + full test suite + the cycada_check contract analyzer, a
# fault-injected cycada_check run that must degrade gracefully, and a TSan
# leg over the concurrency-sensitive suites. Fast enough for every push;
# the full sanitizer matrix stays in scripts/check.sh.
#
#   ./scripts/ci.sh               # everything below
#   CYCADA_SKIP_TSAN=1 ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

# --- Tier 1: default build, all tests, contract analyzer ---------------------
run cmake -B build -S .
run cmake --build build -j
# Note: ctest's bare -j greedily consumes the next argument, so the level
# is always passed explicitly.
(cd build && run ctest --output-on-failure -j "$(nproc)")
run ./build/tools/cycada_check --root "$(pwd)/src"

# --- Fault-injected analyzer run (docs/ROBUSTNESS.md) ------------------------
# Persistent replica-mint failures: the workload must complete in degraded
# mode with zero findings, not crash.
echo "==> cycada_check under CYCADA_FAULT (degraded-mode acceptance)"
run env CYCADA_FAULT='linker.dlforce=every:1,egl.create_context=every:1' \
  ./build/tools/cycada_check

# --- Chaos passmark (docs/ROBUSTNESS.md §fault grammar) -----------------------
# Every probe in the fault catalog fires with probability 0.1% (seeded, so
# the run is reproducible). The graphics pipeline must absorb the faults —
# degraded serial mode, replica remint, batch abort-and-replay — and the
# passmark workload must still finish with exit 0.
echo "==> fig6_passmark under CYCADA_FAULT=all=prob:1000:42 (chaos mode)"
run env CYCADA_FAULT='all=prob:1000:42' ./build/bench/fig6_passmark

# --- TSan leg over the lock-free and fault-injection suites ------------------
if [[ "${CYCADA_SKIP_TSAN:-0}" == "1" ]]; then
  echo "ci.sh: OK (TSan skipped)"
  exit 0
fi
run cmake -B build-tsan -S . -DCYCADA_TSAN=ON
run cmake --build build-tsan -j
(cd build-tsan && run ctest --output-on-failure -j "$(nproc)" \
  -R 'DispatchTest|Robustness|LinkerTest|BatchTest')

echo "ci.sh: OK"
