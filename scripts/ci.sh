#!/usr/bin/env bash
# The CI entry point (.github/workflows/ci.yml runs exactly this): tier-1
# build + full test suite + the cycada_check contract analyzer, the tile
# pipeline determinism/scaling leg, the trace capture/replay leg, the
# classification prover with its amendment proof gate, a fault-injected
# cycada_check run that must degrade gracefully, a chaos soak that stalls
# every fault probe under a tight watchdog budget, and a TSan leg over the
# concurrency-sensitive suites. Fast enough for every push; the full
# sanitizer matrix stays in scripts/check.sh (ci.yml also runs a focused
# ASan+UBSan leg).
#
#   ./scripts/ci.sh               # everything below
#   CYCADA_SKIP_TSAN=1 ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

# --- Tier 1: default build, all tests, contract analyzer ---------------------
run cmake -B build -S .
run cmake --build build -j
# Note: ctest's bare -j greedily consumes the next argument, so the level
# is always passed explicitly.
(cd build && run ctest --output-on-failure -j "$(nproc)")
run ./build/tools/cycada_check --root "$(pwd)/src"

# --- Tile pipeline determinism + scaling (docs/PIPELINE.md) ------------------
# The tiled rasterizer must be deterministic: the full PassMark screen hash
# at 4 workers must be byte-identical to the single-threaded run. The
# scaling gate (>= 2.00x raster speedup at 4 workers) only means something
# with real cores underneath, so it is conditioned on nproc.
echo "==> fig6 framebuffer hashes at CYCADA_GPU_WORKERS=1 vs 4"
hash_w1="$(CYCADA_PASSMARK_HASH=1 CYCADA_GPU_WORKERS=1 \
  ./build/bench/fig6_passmark)"
hash_w4="$(CYCADA_PASSMARK_HASH=1 CYCADA_GPU_WORKERS=4 \
  ./build/bench/fig6_passmark)"
if [[ "${hash_w1}" != "${hash_w4}" ]]; then
  echo "ci.sh: FAIL — framebuffer hashes diverge across worker counts" >&2
  diff <(printf '%s\n' "${hash_w1}") <(printf '%s\n' "${hash_w4}") >&2 || true
  exit 1
fi
echo "    identical ($(printf '%s\n' "${hash_w1}" | grep -c '^hash ') hashes)"
if [[ "$(nproc)" -ge 4 ]]; then
  echo "==> fig6 worker sweep (>= 2.00x raster speedup at 4 workers)"
  sweep_json="$(CYCADA_PASSMARK_SWEEP=1 ./build/bench/fig6_passmark)"
  speedup_x100="$(printf '%s' "${sweep_json}" \
    | grep -o '"fig6.sweep.workers4.raster_speedup_x100":[0-9]*' \
    | grep -o '[0-9]*$' || true)"
  if [[ -z "${speedup_x100}" || "${speedup_x100}" -lt 200 ]]; then
    echo "ci.sh: FAIL — 4-worker raster speedup" \
         "$(printf '%s' "${speedup_x100:-?}")/100 < 2.00x" >&2
    exit 1
  fi
  echo "    speedup ${speedup_x100}/100 at 4 workers"
else
  echo "==> fig6 scaling gate skipped ($(nproc) core(s); needs >= 4)"
fi

# --- Trace capture / replay leg (docs/TRACING.md) ----------------------------
# Capture the real PassMark and SunSpider bench runs, replay the PassMark
# stream at 1 and 4 threads with fidelity verification (per-diplomat counts
# exact, crossings/call within 5%), and mine both captures with the trace
# checker. Any finding fails the leg; batchability candidates are advisory.
tracedir="$(mktemp -d)"
trap 'rm -rf "${tracedir}"' EXIT
echo "==> capturing fig6_passmark + fig5_sunspider (CYCADA_TRACE_CAPTURE)"
run env CYCADA_TRACE_CAPTURE="${tracedir}/passmark.cyt" \
  ./build/bench/fig6_passmark
run env CYCADA_TRACE_CAPTURE="${tracedir}/sunspider.cyt" \
  ./build/bench/fig5_sunspider
echo "==> replaying the PassMark capture (1 and 4 threads, max rate)"
run ./build/tools/cycada_replay "${tracedir}/passmark.cyt" \
  --threads 1 --iterations 2 --verify
run ./build/tools/cycada_replay "${tracedir}/passmark.cyt" \
  --threads 4 --iterations 2 --verify
echo "==> mining the captures (zero findings gate)"
run ./build/tools/cycada_check --trace "${tracedir}/passmark.cyt" \
  --trace "${tracedir}/sunspider.cyt" \
  --trace "$(pwd)/tests/data/golden_passmark.cyt" \
  --trace "$(pwd)/tests/data/golden_sunspider.cyt"

# --- Classification prover (docs/ANALYZER.md) --------------------------------
# The static dispatch-site scanner and the committed golden corpus must
# agree with classification.cpp (zero findings, blocking), and the
# static+corpus agreements must graduate into at least one amendment that
# the real cycada_replay --verify binary proves end-to-end under
# CYCADA_CLASSIFY_AMEND.
echo "==> cycada_check --classify (classification prover + amendment proof)"
run ./build/tools/cycada_check --classify --root "$(pwd)/src" \
  --corpus "$(pwd)/tests/data/golden_passmark.cyt" \
  --corpus "$(pwd)/tests/data/golden_sunspider.cyt" \
  --amend-out "${tracedir}/classification_amendments"
if ! grep -q '^batchable ' "${tracedir}/classification_amendments"; then
  echo "ci.sh: FAIL — the classification prover produced no amendment" >&2
  exit 1
fi
echo "==> replaying the golden corpus under the generated amendments"
run env CYCADA_CLASSIFY_AMEND="${tracedir}/classification_amendments" \
  ./build/tools/cycada_replay "$(pwd)/tests/data/golden_passmark.cyt" \
  --threads 2 --iterations 2 --verify
run env CYCADA_CLASSIFY_AMEND="${tracedir}/classification_amendments" \
  ./build/tools/cycada_replay "$(pwd)/tests/data/golden_sunspider.cyt" \
  --threads 2 --iterations 2 --verify

# --- Fleet leg (docs/SESSIONS.md) --------------------------------------------
# Eight concurrent sessions in one process, each replaying the golden
# PassMark capture as in-session load before rendering. --verify gates
# byte-identical per-session screen hashes against a default-session
# reference, zero session errors, zero cross-session leak evidence, and
# all sessions destroyed on exit.
echo "==> cycada_fleet (8 sessions, golden PassMark replay, verified)"
run ./build/tools/cycada_fleet --sessions 8 --frames 3 \
  --replay "$(pwd)/tests/data/golden_passmark.cyt" --verify

# --- Fault-injected analyzer run (docs/ROBUSTNESS.md) ------------------------
# Persistent replica-mint failures: the workload must complete in degraded
# mode with zero findings, not crash.
echo "==> cycada_check under CYCADA_FAULT (degraded-mode acceptance)"
run env CYCADA_FAULT='linker.dlforce=every:1,egl.create_context=every:1' \
  ./build/tools/cycada_check

# --- Chaos passmark (docs/ROBUSTNESS.md §fault grammar) -----------------------
# Every probe in the fault catalog fires with probability 0.1% (seeded, so
# the run is reproducible). The graphics pipeline must absorb the faults —
# degraded serial mode, replica remint, batch abort-and-replay — and the
# passmark workload must still finish with exit 0.
echo "==> fig6_passmark under CYCADA_FAULT=all=prob:1000:42 (chaos mode)"
run env CYCADA_FAULT='all=prob:1000:42' ./build/bench/fig6_passmark

# --- Chaos soak (docs/ROBUSTNESS.md §recovery ladder) -------------------------
# Fixed wall-clock budget with randomized stall + error faults on every
# catalog probe and a tight watchdog budget. The harness itself asserts
# liveness (no frame over its envelope), that the recovery ladder climbs
# back to full-parallel once the faults clear, and that the analyzer finds
# no persona/lock leaks afterwards. The seed is logged so any failure
# reproduces bit-for-bit.
SOAK_SEED="${CYCADA_CHAOS_SEED:-42}"
echo "==> fig6_passmark chaos soak (8s budget, seed ${SOAK_SEED})"
run env CYCADA_PASSMARK_SOAK_MS=8000 CYCADA_WATCHDOG_BUDGET_MS=50 \
  CYCADA_CHAOS_SEED="${SOAK_SEED}" ./build/bench/fig6_passmark

# --- TSan leg over the lock-free and fault-injection suites ------------------
if [[ "${CYCADA_SKIP_TSAN:-0}" == "1" ]]; then
  echo "ci.sh: OK (TSan skipped)"
  exit 0
fi
run cmake -B build-tsan -S . -DCYCADA_TSAN=ON
run cmake --build build-tsan -j
(cd build-tsan && run ctest --output-on-failure -j "$(nproc)" \
  -R 'DispatchTest|Robustness|LinkerTest|BatchTest|PipelineTest|SessionTest')

echo "ci.sh: OK"
