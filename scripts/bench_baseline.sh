#!/usr/bin/env bash
# Produces the committed benchmark baseline for this PR (BENCH_pr10.json):
# a Release build of the bench targets, each run with CYCADA_BENCH_JSON
# pointed at a temp file, merged into one document whose schema is described
# in docs/BENCHMARKING.md. Counters are merged flat; histograms keep their
# per-run p50/p95/p99 so bench_compare.sh can gate on tail latency too.
# The trace-replay leg (docs/TRACING.md) captures a golden workload and
# replays it at 4 threads so replay throughput rides the same gate; the
# fig6 worker-sweep leg (docs/PIPELINE.md) runs PassMark at 1/2/4/8 tile
# workers so the per-stage pipeline histograms and the raster speedup ride
# it too; the chaos-soak leg (docs/ROBUSTNESS.md) records the watchdog's
# escalation/recovery counters and stall histograms under deterministic
# fault injection (soak.* keys — informational in bench_compare.sh, since
# they measure injected faults, not code speed); the fleet leg
# (docs/SESSIONS.md) drives 16 concurrent sessions through cycada_fleet so
# multi-app throughput and frame-latency tails (fleet.frame_p99_ns) ride
# the lower-is-better gate.
# From the repo root:
#
#   ./scripts/bench_baseline.sh                # writes BENCH_pr10.json
#   BENCH_OUT=/tmp/b.json ./scripts/bench_baseline.sh
#   BENCH_PR=6 ./scripts/bench_baseline.sh     # writes BENCH_pr6.json
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${BENCH_PR:-10}"
OUT="${BENCH_OUT:-BENCH_pr${PR}.json}"
BUILD=build-bench

echo "==> configuring ${BUILD} (Release)"
cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
echo "==> building bench targets"
cmake --build "${BUILD}" -j --target table3_microbench \
  table2_diplomat_breakdown cycada_trace_gen cycada_replay \
  fig6_passmark cycada_fleet >/dev/null

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

echo "==> running table3_microbench"
CYCADA_BENCH_JSON="${tmpdir}/table3.json" \
  "./${BUILD}/bench/table3_microbench" --benchmark_min_time=0.05s
echo "==> running table2_diplomat_breakdown"
CYCADA_BENCH_JSON="${tmpdir}/table2.json" \
  "./${BUILD}/bench/table2_diplomat_breakdown" >/dev/null
echo "==> running trace replay (4 threads, max rate)"
"./${BUILD}/tools/cycada_trace_gen" "${tmpdir}/replay.cyt" --frames 3 \
  >/dev/null
CYCADA_BENCH_JSON="${tmpdir}/replay.json" \
  "./${BUILD}/tools/cycada_replay" "${tmpdir}/replay.cyt" \
  --threads 4 --iterations 16 --verify >/dev/null
echo "==> running fig6 worker sweep (1/2/4/8 tile workers)"
CYCADA_BENCH_JSON="${tmpdir}/sweep.json" CYCADA_PASSMARK_SWEEP=1 \
  "./${BUILD}/bench/fig6_passmark" >/dev/null
echo "==> running fig6 chaos soak (4s budget, seed 42)"
CYCADA_BENCH_JSON="${tmpdir}/soak.json" CYCADA_PASSMARK_SOAK_MS=4000 \
  CYCADA_WATCHDOG_BUDGET_MS=50 CYCADA_CHAOS_SEED=42 \
  "./${BUILD}/bench/fig6_passmark" >/dev/null
echo "==> running cycada_fleet (16 sessions, 4 frames, verified)"
CYCADA_BENCH_JSON="${tmpdir}/fleet.json" \
  "./${BUILD}/tools/cycada_fleet" --sessions 16 --frames 4 --verify \
  >/dev/null

# Merge the two bench documents (shell-only; no python/jq dependency). Each
# emits {"counters":{...},"histograms":{...}}; the counters object is flat
# (no nested braces), so merging is concatenating the inner key/value lists.
# The histograms object is one level deep ("name":{...} entries) and is the
# last thing in the document, so its inner list is everything between
# '"histograms":{' and the closing '}}'.
counters() {
  tr -d '\n' < "$1" | sed -n 's/.*"counters":{\([^}]*\)}.*/\1/p'
}
histograms() {
  tr -d '\n' < "$1" | sed -n 's/.*"histograms":{\(.*\)}}$/\1/p'
}
join_nonempty() {
  # join_nonempty A B -> "A,B", dropping empty parts.
  local joined=""
  for part in "$@"; do
    [[ -z "${part}" ]] && continue
    [[ -n "${joined}" ]] && joined+=","
    joined+="${part}"
  done
  printf '%s' "${joined}"
}
{
  printf '{"schema":"cycada-bench/v1","pr":%d,"build":"Release","counters":{' \
    "${PR}"
  printf '%s' "$(join_nonempty "$(counters "${tmpdir}/table3.json")" \
    "$(counters "${tmpdir}/table2.json")" \
    "$(counters "${tmpdir}/replay.json")" \
    "$(counters "${tmpdir}/sweep.json")" \
    "$(counters "${tmpdir}/soak.json")" \
    "$(counters "${tmpdir}/fleet.json")")"
  printf '},"histograms":{'
  printf '%s' "$(join_nonempty "$(histograms "${tmpdir}/table3.json")" \
    "$(histograms "${tmpdir}/table2.json")" \
    "$(histograms "${tmpdir}/replay.json")" \
    "$(histograms "${tmpdir}/sweep.json")" \
    "$(histograms "${tmpdir}/soak.json")" \
    "$(histograms "${tmpdir}/fleet.json")")"
  printf '}}\n'
} > "${OUT}"

echo "==> wrote ${OUT}"
grep -o '"table3.dispatch.[^,}]*' "${OUT}" | sed 's/"//g'
grep -o '"fig6.sweep.[^,}]*' "${OUT}" | sed 's/"//g'
grep -o '"soak.watchdog.[^,}]*' "${OUT}" | sed 's/"//g' | head -8
grep -o '"fleet.[^,}]*' "${OUT}" | sed 's/"//g'
