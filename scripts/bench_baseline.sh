#!/usr/bin/env bash
# Produces the committed benchmark baseline for this PR (BENCH_pr3.json):
# a Release build of the two bench targets, each run with CYCADA_BENCH_JSON
# pointed at a temp file, merged into one document whose schema is described
# in docs/BENCHMARKING.md. From the repo root:
#
#   ./scripts/bench_baseline.sh                # writes BENCH_pr3.json
#   BENCH_OUT=/tmp/b.json ./scripts/bench_baseline.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PR=3
OUT="${BENCH_OUT:-BENCH_pr${PR}.json}"
BUILD=build-bench

echo "==> configuring ${BUILD} (Release)"
cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
echo "==> building bench targets"
cmake --build "${BUILD}" -j --target table3_microbench \
  table2_diplomat_breakdown >/dev/null

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

echo "==> running table3_microbench"
CYCADA_BENCH_JSON="${tmpdir}/table3.json" \
  "./${BUILD}/bench/table3_microbench" --benchmark_min_time=0.05s
echo "==> running table2_diplomat_breakdown"
CYCADA_BENCH_JSON="${tmpdir}/table2.json" \
  "./${BUILD}/bench/table2_diplomat_breakdown" >/dev/null

# Merge the two bench documents (shell-only; no python/jq dependency). Each
# emits {"counters":{...},"histograms":{...}}; the counters object is flat
# (no nested braces), so merging is concatenating the inner key/value lists.
inner() {
  tr -d '\n' < "$1" | sed -n 's/.*"counters":{\([^}]*\)}.*/\1/p'
}
{
  printf '{"schema":"cycada-bench/v1","pr":%d,"build":"Release","counters":{' \
    "${PR}"
  printf '%s,%s' "$(inner "${tmpdir}/table3.json")" \
    "$(inner "${tmpdir}/table2.json")"
  printf '}}\n'
} > "${OUT}"

echo "==> wrote ${OUT}"
grep -o '"table3.dispatch.[^,}]*' "${OUT}" | sed 's/"//g'
