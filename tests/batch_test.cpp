// Command-buffer batching (src/core/batch.h): recording rules, every
// implicit flush boundary, and the fault-atomicity guarantees of the
// token-bracketed crossing.
#include "core/batch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/diplomat.h"
#include "core/impersonation.h"
#include "glport/system_config.h"
#include "ios_gl/eagl.h"
#include "ios_gl/egl_bridge.h"
#include "kernel/kernel.h"
#include "trace/metrics.h"
#include "util/faultpoint.h"

namespace cycada::core {
namespace {

std::uint64_t counter_value(const char* name) {
  return trace::MetricsRegistry::instance().counter(name).value();
}

// A classifier-approved batchable diplomat (direct, void, scalar args).
DiplomatEntry& batchable_entry() {
  return DiplomatRegistry::instance().entry("glEnable",
                                            DiplomatPattern::kDirect);
}

// A thread registered with the kernel, usable as an impersonation target.
class RegisteredHelperThread {
 public:
  RegisteredHelperThread() {
    thread_ = std::thread([this] {
      kernel::ThreadState& state =
          kernel::Kernel::instance().register_current_thread(
              kernel::Persona::kIos);
      tid_.store(state.tid(), std::memory_order_release);
      while (!stop_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    while (tid_.load(std::memory_order_acquire) == kernel::kInvalidTid) {
      std::this_thread::yield();
    }
  }
  ~RegisteredHelperThread() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }
  kernel::Tid tid() const { return tid_.load(std::memory_order_acquire); }

 private:
  std::thread thread_;
  std::atomic<kernel::Tid> tid_{kernel::kInvalidTid};
  std::atomic<bool> stop_{false};
};

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    glport::apply_system_config(glport::SystemConfig::kCycadaIos);
    util::FaultRegistry::instance().disarm_all();
    ASSERT_EQ(pending_batched_calls(), 0u);
  }
  void TearDown() override {
    flush_current_batch(BatchFlushReason::kExplicit);
    util::FaultRegistry::instance().disarm_all();
  }
};

// --- Recording rules ---------------------------------------------------------

TEST_F(BatchTest, RecordsOnlyInsideScopeAndOnlyBatchable) {
  DiplomatEntry& batchable = batchable_entry();
  DiplomatEntry& plain = DiplomatRegistry::instance().entry(
      "batch_test.not_batchable", DiplomatPattern::kDirect);
  ASSERT_TRUE(batchable.batchable);
  ASSERT_FALSE(plain.batchable);

  // No scope open: nothing records, the caller dispatches normally.
  EXPECT_FALSE(batching_active());
  EXPECT_FALSE(batch_record(batchable, {}, [] {}));
  {
    BatchScope scope;
    EXPECT_TRUE(batching_active());
    EXPECT_TRUE(batch_record(batchable, {}, [] {}));
    EXPECT_EQ(pending_batched_calls(), 1u);
    // Non-batchable diplomats never queue, even inside a scope.
    EXPECT_FALSE(batch_record(plain, {}, [] {}));
    EXPECT_EQ(pending_batched_calls(), 1u);
  }
  EXPECT_FALSE(batching_active());
  EXPECT_EQ(pending_batched_calls(), 0u);
}

TEST_F(BatchTest, SizeCapFlushesAutomatically) {
  DiplomatEntry& entry = batchable_entry();
  const std::uint64_t calls_before = entry.calls.load();
  const std::uint64_t flushes_before =
      counter_value("dispatch.batch.flush.size_cap");
  const std::uint64_t switches_before = counter_value("persona.switches");
  {
    BatchScope scope(/*size_cap=*/4);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(batch_record(entry, {}, [] {}));
    }
    // The cap flushed inside the scope: nothing waits for scope exit.
    EXPECT_EQ(pending_batched_calls(), 0u);
  }
  EXPECT_EQ(counter_value("dispatch.batch.flush.size_cap"),
            flushes_before + 1);
  EXPECT_EQ(entry.calls.load(), calls_before + 4);
  // Four calls shared one crossing: two persona switches, not eight.
  EXPECT_EQ(counter_value("persona.switches"), switches_before + 2);
}

TEST_F(BatchTest, ScopeExitFlushesInOrder) {
  DiplomatEntry& entry = batchable_entry();
  const std::uint64_t exit_before =
      counter_value("dispatch.batch.flush.scope_exit");
  std::vector<int> order;
  {
    BatchScope scope;
    for (int i = 1; i <= 3; ++i) {
      // Replays are deferred: arguments must be captured by value.
      ASSERT_TRUE(batch_record(entry, {}, [&order, i] { order.push_back(i); }));
    }
    EXPECT_TRUE(order.empty());  // nothing ran yet
    EXPECT_EQ(pending_batched_calls(), 3u);
  }
  EXPECT_EQ(order, std::vector<int>({1, 2, 3}));
  EXPECT_EQ(counter_value("dispatch.batch.flush.scope_exit"), exit_before + 1);
}

TEST_F(BatchTest, EmptyScopeIsANoOpCrossing) {
  const std::uint64_t switches_before = counter_value("persona.switches");
  const std::uint64_t empty_before =
      counter_value("dispatch.batch.empty_flushes");
  { BatchScope scope; }
  // No syscalls at all for an empty batch — just the bookkeeping counter.
  EXPECT_EQ(counter_value("persona.switches"), switches_before);
  EXPECT_EQ(counter_value("dispatch.batch.empty_flushes"), empty_before + 1);
}

TEST_F(BatchTest, NestedScopesFlushOnceAtOutermostExit) {
  DiplomatEntry& entry = batchable_entry();
  const std::uint64_t exit_before =
      counter_value("dispatch.batch.flush.scope_exit");
  std::vector<int> order;
  {
    BatchScope outer;
    {
      BatchScope inner;
      ASSERT_TRUE(batch_record(entry, {}, [&order] { order.push_back(1); }));
    }
    // The inner scope exit is free: the batch belongs to the outermost.
    EXPECT_EQ(pending_batched_calls(), 1u);
    EXPECT_TRUE(order.empty());
    ASSERT_TRUE(batch_record(entry, {}, [&order] { order.push_back(2); }));
  }
  EXPECT_EQ(order, std::vector<int>({1, 2}));
  EXPECT_EQ(counter_value("dispatch.batch.flush.scope_exit"), exit_before + 1);
}

// --- Implicit flush boundaries ----------------------------------------------

TEST_F(BatchTest, ContextSwitchFlushesMidBatch) {
  auto first = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 16, 16);
  auto second = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 16, 16);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  ios_gl::EAGLContext::set_current_context(*first);

  DiplomatEntry& entry = batchable_entry();
  const std::uint64_t ctx_before =
      counter_value("dispatch.batch.flush.context_switch");
  std::vector<int> order;
  {
    BatchScope scope;
    ASSERT_TRUE(batch_record(entry, {}, [&order] { order.push_back(1); }));
    // Making another context current is a batch boundary: queued calls
    // belong to the old context's command stream and must land first.
    ios_gl::EAGLContext::set_current_context(*second);
    EXPECT_EQ(order, std::vector<int>({1}));
    ASSERT_TRUE(batch_record(entry, {}, [&order] { order.push_back(2); }));
    // ...and switching back is a boundary again (nested switch mid-batch).
    ios_gl::EAGLContext::set_current_context(*first);
    EXPECT_EQ(order, std::vector<int>({1, 2}));
  }
  EXPECT_GE(counter_value("dispatch.batch.flush.context_switch"),
            ctx_before + 2);
  ios_gl::EAGLContext::clear_current_context();
}

TEST_F(BatchTest, ImpersonationBoundaryFlushesBothWays) {
  RegisteredHelperThread target;
  DiplomatEntry& entry = batchable_entry();
  const std::uint64_t imp_before =
      counter_value("dispatch.batch.flush.impersonation");
  std::vector<int> order;
  {
    BatchScope scope;
    ASSERT_TRUE(batch_record(entry, {}, [&order] { order.push_back(1); }));
    {
      // Impersonation start migrates TLS: calls recorded under our own
      // identity must replay before the target's TLS is installed.
      ThreadImpersonation imp(target.tid());
      EXPECT_TRUE(imp.active());
      EXPECT_EQ(order, std::vector<int>({1}));
      ASSERT_TRUE(batch_record(entry, {}, [&order] { order.push_back(2); }));
      // ...and nothing recorded while impersonating may replay after the
      // identity is handed back (the destructor boundary).
    }
    EXPECT_EQ(order, std::vector<int>({1, 2}));
  }
  EXPECT_GE(counter_value("dispatch.batch.flush.impersonation"),
            imp_before + 2);
}

TEST_F(BatchTest, DegradedEntryFlushes) {
  DiplomatEntry& entry = batchable_entry();
  const std::uint64_t degraded_before =
      counter_value("dispatch.batch.flush.degraded");
  std::vector<int> order;
  {
    BatchScope scope;
    ASSERT_TRUE(batch_record(entry, {}, [&order] { order.push_back(1); }));
    // Entering the degraded serial section is a boundary: batched replay
    // must not straddle the fallback's serialization lock.
    auto lock = ios_gl::eglbridge::degraded_serial_lock(/*degraded=*/true);
    EXPECT_EQ(order, std::vector<int>({1}));
  }
  EXPECT_EQ(counter_value("dispatch.batch.flush.degraded"),
            degraded_before + 1);
}

// --- Fault atomicity ---------------------------------------------------------

TEST_F(BatchTest, AbortedCrossingReplaysEveryCallExactlyOnce) {
  DiplomatEntry& entry = batchable_entry();
  util::FaultPoint& fault =
      util::FaultRegistry::instance().point("kernel.set_persona");
  const std::uint64_t calls_before = entry.calls.load();
  const std::uint64_t aborted_before = counter_value("dispatch.batch.aborted");
  const kernel::Persona caller =
      kernel::Kernel::instance().current_thread().persona();

  std::vector<int> order;
  {
    BatchScope scope;
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(batch_record(entry, {}, [&order, i] { order.push_back(i); }));
    }
    // Every set_persona now fails: the crossing cannot open, so the whole
    // batch aborts to the plain single-call procedure.
    fault.disarm();
    fault.arm_every(1);
    flush_current_batch(BatchFlushReason::kExplicit);
    fault.disarm();
  }
  // Atomicity: every queued call ran exactly once, in order, and the
  // thread came back in the caller's persona.
  EXPECT_EQ(order, std::vector<int>({1, 2, 3}));
  EXPECT_EQ(entry.calls.load(), calls_before + 3);
  EXPECT_EQ(counter_value("dispatch.batch.aborted"), aborted_before + 1);
  EXPECT_EQ(kernel::Kernel::instance().current_thread().persona(), caller);
}

TEST_F(BatchTest, ForcedCloseNeverLeaksTheAndroidPersona) {
  util::FaultPoint& fault =
      util::FaultRegistry::instance().point("kernel.set_persona");
  const kernel::Persona caller =
      kernel::Kernel::instance().current_thread().persona();
  const std::uint64_t forced_before =
      counter_value("dispatch.batch.close_forced");

  const std::uint64_t token = detail::batched_crossing_begin();
  ASSERT_NE(token, 0u);
  // The crossing is open; now every close attempt fails persistently. The
  // recovery path must force it shut — a leaked Android persona (and a
  // stuck token) would corrupt every later syscall on this thread.
  fault.disarm();
  fault.arm_every(1);
  EXPECT_FALSE(detail::batched_crossing_end(token, caller, 1));
  fault.disarm();

  EXPECT_EQ(counter_value("dispatch.batch.close_forced"), forced_before + 1);
  EXPECT_EQ(kernel::Kernel::instance().current_thread().persona(), caller);
  // The token was cleared: a fresh crossing opens and closes normally.
  const std::uint64_t next = detail::batched_crossing_begin();
  ASSERT_NE(next, 0u);
  EXPECT_TRUE(detail::batched_crossing_end(next, caller, 1));
  EXPECT_EQ(kernel::Kernel::instance().current_thread().persona(), caller);
}

TEST_F(BatchTest, TokenMisuseIsRejectedByTheKernel) {
  const kernel::Persona caller =
      kernel::Kernel::instance().current_thread().persona();
  const long token = kernel::sys_persona_batch_begin(kernel::Persona::kAndroid);
  ASSERT_GT(token, 0);
  // One batch per thread: a nested open is a caller bug, not a new token.
  EXPECT_LT(kernel::sys_persona_batch_begin(kernel::Persona::kAndroid), 0);
  // A close must present the thread's own token.
  EXPECT_LT(kernel::sys_persona_batch_end(
                static_cast<std::uint64_t>(token) + 1, caller, 1),
            0);
  // Neither rejection disturbed the open crossing.
  EXPECT_EQ(kernel::Kernel::instance().current_thread().persona(),
            kernel::Persona::kAndroid);
  EXPECT_EQ(kernel::sys_persona_batch_end(static_cast<std::uint64_t>(token),
                                          caller, 1),
            0);
  EXPECT_EQ(kernel::Kernel::instance().current_thread().persona(), caller);
}

}  // namespace
}  // namespace cycada::core
