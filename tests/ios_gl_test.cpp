// End-to-end tests of the foreign (iOS) graphics surface on both platforms:
// Cycada (diplomats into the Android stack) and native iOS (Apple engine).
#include "ios_gl/gles.h"

#include <gtest/gtest.h>

#include <thread>

#include "android_gl/vendor.h"
#include "core/diplomat.h"
#include "core/impersonation.h"
#include "gpu/device.h"
#include "ios_gl/eagl.h"
#include "ios_gl/platform.h"
#include "kernel/kernel.h"

namespace cycada::ios_gl {
namespace {

constexpr char kVsSolid[] =
    "attribute vec4 a_position; uniform mat4 u_mvp;"
    "void main() { gl_Position = u_mvp * a_position; }";
constexpr char kFsSolid[] =
    "uniform vec4 u_color; void main() { gl_FragColor = u_color; }";
const float kIdentity[16] = {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1};

// An "iOS app" frame: set up an offscreen EAGL drawable, render a solid
// color quad, present. Returns the renderbuffer used.
GLuint render_solid_frame(EAGLContext::Ref context, float r, float g, float b,
                          int size = 16) {
  GLuint fbo = 0, rbo = 0;
  glGenFramebuffers(1, &fbo);
  glGenRenderbuffers(1, &rbo);
  glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
  EXPECT_TRUE(context
                  ->renderbuffer_storage_from_drawable(
                      rbo, CAEAGLLayer{size, size})
                  .is_ok());
  glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
  glFramebufferRenderbuffer(glcore::GL_FRAMEBUFFER,
                            glcore::GL_COLOR_ATTACHMENT0,
                            glcore::GL_RENDERBUFFER, rbo);
  EXPECT_EQ(glCheckFramebufferStatus(glcore::GL_FRAMEBUFFER),
            glcore::GL_FRAMEBUFFER_COMPLETE);
  glViewport(0, 0, size, size);
  glClearColor(r, g, b, 1.f);
  glClear(glcore::GL_COLOR_BUFFER_BIT);
  EXPECT_TRUE(context->present_renderbuffer(rbo).is_ok());
  return rbo;
}

class IosGlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel::Kernel::instance().reset();
    gpu::GpuDevice::instance().reset();
    gmem::GrallocAllocator::instance().reset();
    linker::Linker::instance().reset();
    iosurface::LinuxCoreSurface::instance().reset();
    core::DiplomatRegistry::instance().reset();
    core::GraphicsTlsTracker::instance().reset();
    core::GraphicsTlsTracker::instance().install();
    reset_native_ios();
    set_platform(Platform::kCycada);
    iosurface::LinuxCoreSurface::instance().set_native_lock_semantics(false);
    // The iOS app's main thread runs in the iOS persona.
    kernel::Kernel::instance().register_current_thread(kernel::Persona::kIos);
    EAGLContext::clear_current_context();
  }

  void TearDown() override { EAGLContext::clear_current_context(); }
};

TEST_F(IosGlTest, EaglContextCreationBuildsReplica) {
  auto context = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2);
  ASSERT_TRUE(context.is_ok());
  EXPECT_EQ((*context)->api(), EAGLRenderingAPI::kOpenGLES2);
  EXPECT_NE((*context)->wrapper(), nullptr);
  EXPECT_NE((*context)->sharegroup(), nullptr);
  // One replica of the whole vendor stack was loaded.
  EXPECT_EQ(
      linker::Linker::instance().live_copy_count(android_gl::kUiWrapperLib),
      1);
  EXPECT_GE(
      linker::Linker::instance().live_copy_count(android_gl::kVendorGlesLib),
      2);  // process connection + replica
}

TEST_F(IosGlTest, FullCycadaFramePipeline) {
  auto context = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2);
  ASSERT_TRUE(context.is_ok());
  ASSERT_TRUE(EAGLContext::set_current_context(*context));
  render_solid_frame(*context, 0.f, 0.f, 1.f);
  const Image screen = (*context)->screen_snapshot();
  ASSERT_EQ(screen.width(), 320);  // the layer presents into the EAGL window
  EXPECT_EQ(screen.at(0, 0), 0xffff0000u);    // blue
  EXPECT_EQ(screen.at(15, 15), 0xffff0000u);  // blue (16x16 drawable region)
}

TEST_F(IosGlTest, NativeIosPipelineMatchesCycadaPixels) {
  // The same app code must produce identical pixels on both platforms
  // (the paper's "visually similar to the iPad mini" check, made exact).
  const auto run_app = [](int size) {
    auto context =
        EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2, size, size);
    EXPECT_TRUE(context.is_ok());
    EXPECT_TRUE(EAGLContext::set_current_context(*context));
    GLuint fbo = 0, rbo = 0;
    glGenFramebuffers(1, &fbo);
    glGenRenderbuffers(1, &rbo);
    glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
    EXPECT_TRUE((*context)
                    ->renderbuffer_storage_from_drawable(
                        rbo, CAEAGLLayer{size, size})
                    .is_ok());
    glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
    glFramebufferRenderbuffer(glcore::GL_FRAMEBUFFER,
                              glcore::GL_COLOR_ATTACHMENT0,
                              glcore::GL_RENDERBUFFER, rbo);
    glViewport(0, 0, size, size);
    glClearColor(0.2f, 0.4f, 0.6f, 1.f);
    glClear(glcore::GL_COLOR_BUFFER_BIT);
    // Draw a triangle through the programmable pipeline.
    const GLuint vs = glCreateShader(glcore::GL_VERTEX_SHADER);
    const GLuint fs = glCreateShader(glcore::GL_FRAGMENT_SHADER);
    const char* vs_src = kVsSolid;
    const char* fs_src = kFsSolid;
    glShaderSource(vs, 1, &vs_src, nullptr);
    glShaderSource(fs, 1, &fs_src, nullptr);
    glCompileShader(vs);
    glCompileShader(fs);
    const GLuint prog = glCreateProgram();
    glAttachShader(prog, vs);
    glAttachShader(prog, fs);
    glLinkProgram(prog);
    glUseProgram(prog);
    glUniformMatrix4fv(0, 1, glcore::GL_FALSE, kIdentity);
    glUniform4f(1, 1.f, 0.5f, 0.f, 1.f);
    const float triangle[] = {-0.8f, -0.8f, 0.8f, -0.8f, 0.f, 0.8f};
    glEnableVertexAttribArray(0);
    glVertexAttribPointer(0, 2, glcore::GL_FLOAT, glcore::GL_FALSE, 0,
                          triangle);
    glDrawArrays(glcore::GL_TRIANGLES, 0, 3);
    EXPECT_TRUE((*context)->present_renderbuffer(rbo).is_ok());
    Image screen = (*context)->screen_snapshot();
    EAGLContext::clear_current_context();
    return screen;
  };

  set_platform(Platform::kCycada);
  const Image cycada = run_app(32);
  set_platform(Platform::kNativeIos);
  const Image native = run_app(32);
  EXPECT_EQ(Image::diff_count(cycada, native), 0u);
  // Sanity: the triangle actually rendered.
  EXPECT_EQ(cycada.at(16, 24), 0xff0080ffu);  // orange-ish center-bottom
}

TEST_F(IosGlTest, GlCallsWithoutContextAreSafeNoOps) {
  glClear(glcore::GL_COLOR_BUFFER_BIT);
  EXPECT_EQ(glGetError(), glcore::GL_NO_ERROR);
  EXPECT_EQ(glCreateProgram(), 0u);
}

TEST_F(IosGlTest, MultithreadedGlesViaImpersonation) {
  // GCD-style pattern: the main thread creates the EAGL context; a worker
  // thread renders with it (iOS semantics). On Android this violates the
  // affinity rule, so the dispatch migrates TLS per call (paper §7).
  auto context = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2);
  ASSERT_TRUE(context.is_ok());
  ASSERT_TRUE(EAGLContext::set_current_context(*context));

  std::atomic<bool> worker_ok{false};
  std::thread worker([&] {
    kernel::Kernel::instance().register_current_thread(kernel::Persona::kIos);
    EAGLContext::set_current_context(*context);
    render_solid_frame(*context, 1.f, 0.f, 0.f);
    worker_ok.store(glGetError() == glcore::GL_NO_ERROR);
    EAGLContext::clear_current_context();
  });
  worker.join();
  EXPECT_TRUE(worker_ok.load());
  const Image screen = (*context)->screen_snapshot();
  EXPECT_EQ(screen.at(0, 0), 0xff0000ffu);  // red frame from the worker
  // Main thread still renders fine afterwards.
  render_solid_frame(*context, 0.f, 1.f, 0.f);
  EXPECT_EQ((*context)->screen_snapshot().at(0, 0), 0xff00ff00u);
}

TEST_F(IosGlTest, MultipleGlesVersionsInOneProcessViaDlr) {
  // The §8 scenario: a GLES1 game plus a GLES2 WebKit view in ONE process.
  // Each EAGLContext gets its own vendor-stack replica, so the per-process
  // single-version restriction of stock Android does not bite.
  auto game = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES1);
  ASSERT_TRUE(game.is_ok());
  auto web = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2);
  ASSERT_TRUE(web.is_ok());
  EXPECT_NE((*game)->wrapper()->engine(), (*web)->wrapper()->engine());

  // GLES1 fixed-function rendering in the game context.
  ASSERT_TRUE(EAGLContext::set_current_context(*game));
  GLuint fbo = 0, rbo = 0;
  glGenFramebuffers(1, &fbo);
  glGenRenderbuffers(1, &rbo);
  glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
  ASSERT_TRUE(
      (*game)->renderbuffer_storage_from_drawable(rbo, CAEAGLLayer{8, 8})
          .is_ok());
  glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
  glFramebufferRenderbuffer(glcore::GL_FRAMEBUFFER,
                            glcore::GL_COLOR_ATTACHMENT0,
                            glcore::GL_RENDERBUFFER, rbo);
  glViewport(0, 0, 8, 8);
  glMatrixMode(glcore::GL_PROJECTION);
  glLoadIdentity();
  glOrthof(-1, 1, -1, 1, -1, 1);
  glMatrixMode(glcore::GL_MODELVIEW);
  glLoadIdentity();
  glColor4f(1.f, 1.f, 0.f, 1.f);
  const float quad[] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  glEnableClientState(glcore::GL_VERTEX_ARRAY);
  glVertexPointer(2, glcore::GL_FLOAT, 0, quad);
  glDrawArrays(glcore::GL_TRIANGLES, 0, 6);
  ASSERT_TRUE((*game)->present_renderbuffer(rbo).is_ok());
  EXPECT_EQ((*game)->screen_snapshot().at(2, 2), 0xff00ffffu);  // yellow

  // GLES2 rendering in the web context, same process, same time.
  ASSERT_TRUE(EAGLContext::set_current_context(*web));
  render_solid_frame(*web, 0.f, 1.f, 1.f);
  EXPECT_EQ((*web)->screen_snapshot().at(0, 0), 0xffffff00u);  // cyan

  // The game context state was untouched.
  ASSERT_TRUE(EAGLContext::set_current_context(*game));
  EXPECT_EQ(glGetError(), glcore::GL_NO_ERROR);
}

TEST_F(IosGlTest, AppleFenceMapsToNvFence) {
  auto context = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2);
  ASSERT_TRUE(context.is_ok());
  ASSERT_TRUE(EAGLContext::set_current_context(*context));
  GLuint fence = 0;
  glGenFencesAPPLE(1, &fence);
  EXPECT_EQ(glIsFenceAPPLE(fence), glcore::GL_TRUE);
  glClear(glcore::GL_COLOR_BUFFER_BIT);
  glSetFenceAPPLE(fence);
  EXPECT_EQ(glTestFenceAPPLE(fence), glcore::GL_FALSE);
  glFinishFenceAPPLE(fence);
  EXPECT_EQ(glTestFenceAPPLE(fence), glcore::GL_TRUE);
  // The object variants re-arrange inputs onto the same NV fence.
  EXPECT_EQ(glTestObjectAPPLE(GL_FENCE_APPLE, fence), glcore::GL_TRUE);
  glFinishObjectAPPLE(GL_FENCE_APPLE, static_cast<GLint>(fence));
  glDeleteFencesAPPLE(1, &fence);
  EXPECT_EQ(glIsFenceAPPLE(fence), glcore::GL_FALSE);
  // The diplomats were classified indirect.
  for (const auto& snap : core::DiplomatRegistry::instance().snapshot()) {
    if (snap.name == "glSetFenceAPPLE") {
      EXPECT_EQ(snap.pattern, core::DiplomatPattern::kIndirect);
    }
  }
}

TEST_F(IosGlTest, AppleRowBytesHandledDataDependently) {
  auto context = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2);
  ASSERT_TRUE(context.is_ok());
  ASSERT_TRUE(EAGLContext::set_current_context(*context));
  const GLuint rbo = render_solid_frame(*context, 1.f, 0.f, 1.f, 4);
  (void)rbo;

  // Pack 4x4 RGBA pixels with a 32-byte row pitch (APPLE_row_bytes).
  glPixelStorei(glcore::GL_PACK_ROW_BYTES_APPLE, 32);
  std::vector<std::uint8_t> packed(32 * 4, 0xAB);
  glReadPixels(0, 0, 4, 4, glcore::GL_RGBA, glcore::GL_UNSIGNED_BYTE,
               packed.data());
  // Row 1 starts at byte 32, not 16.
  const auto* row1 = reinterpret_cast<const std::uint32_t*>(&packed[32]);
  EXPECT_EQ(row1[0], 0xffff00ffu);  // magenta
  // The pad gap was left untouched.
  EXPECT_EQ(packed[20], 0xAB);
  glPixelStorei(glcore::GL_PACK_ROW_BYTES_APPLE, 0);
  // No GL error surfaced to the app, and Android never saw the enum.
  EXPECT_EQ(glGetError(), glcore::GL_NO_ERROR);
}

TEST_F(IosGlTest, GetStringAppleParameterIsIntercepted) {
  auto context = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2);
  ASSERT_TRUE(context.is_ok());
  ASSERT_TRUE(EAGLContext::set_current_context(*context));
  const auto* apple =
      glGetString(glcore::GL_APPLE_PROPRIETARY_EXTENSIONS);
  ASSERT_NE(apple, nullptr);
  EXPECT_STREQ(reinterpret_cast<const char*>(apple), "");
  EXPECT_EQ(glGetError(), glcore::GL_NO_ERROR);
  // The regular parameters pass through to Android.
  const auto* vendor = glGetString(glcore::GL_VENDOR);
  ASSERT_NE(vendor, nullptr);
  EXPECT_STREQ(reinterpret_cast<const char*>(vendor), "NVIDIA Corporation");
}

TEST_F(IosGlTest, EaglScratchMethods) {
  auto context = EAGLContext::init_with_api_sharegroup(
      EAGLRenderingAPI::kOpenGLES2, std::make_shared<EAGLSharegroup>());
  ASSERT_TRUE(context.is_ok());
  (*context)->set_multithreaded(true);
  EXPECT_TRUE((*context)->is_multithreaded());
  (*context)->set_debug_label("webkit");
  EXPECT_EQ((*context)->debug_label(), "webkit");
  EXPECT_EQ(EAGLContext::current_context(), nullptr);
  ASSERT_TRUE(EAGLContext::set_current_context(*context));
  EXPECT_EQ(EAGLContext::current_context().get(), context->get());
  // The never-called method reports UNIMPLEMENTED.
  EXPECT_EQ((*context)->swap_renderbuffer(1).code(),
            StatusCode::kUnimplemented);
  // drawable_size works after storage is attached.
  EXPECT_FALSE((*context)->drawable_size(7).is_ok());
  GLuint rbo = render_solid_frame(*context, 0, 0, 0, 12);
  auto size = (*context)->drawable_size(rbo);
  ASSERT_TRUE(size.is_ok());
  EXPECT_EQ(size->first, 12);
}

TEST_F(IosGlTest, DiplomatStatsAccumulatePerFunction) {
  core::DiplomatRegistry::instance().set_profiling(true);
  auto context = EAGLContext::init_with_api(EAGLRenderingAPI::kOpenGLES2);
  ASSERT_TRUE(context.is_ok());
  ASSERT_TRUE(EAGLContext::set_current_context(*context));
  render_solid_frame(*context, 0.5f, 0.5f, 0.5f);
  bool saw_clear = false, saw_present = false;
  for (const auto& snap : core::DiplomatRegistry::instance().snapshot()) {
    if (snap.name == "glClear" && snap.calls > 0 && snap.total_ns > 0) {
      saw_clear = true;
    }
    if (snap.name == "aegl_bridge_draw_fbo_tex" && snap.calls > 0) {
      saw_present = true;
    }
  }
  EXPECT_TRUE(saw_clear);
  EXPECT_TRUE(saw_present);
}

}  // namespace
}  // namespace cycada::ios_gl
