#include "jsvm/engine.h"

#include <gtest/gtest.h>

#include "jsvm/regex.h"
#include "jsvm/sunspider.h"
#include "util/clock.h"

namespace cycada::jsvm {
namespace {

// Runs a source string on the given tier and returns the numeric result.
double run_number(std::string_view source, bool jit) {
  JsEngine engine({.jit_enabled = jit});
  auto result = engine.run(source);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string() << "\nsource:\n"
                              << source;
  return result.is_ok() ? result->to_number() : std::nan("");
}

// Both tiers must agree on every program.
class TierTest : public ::testing::TestWithParam<bool> {};

TEST_P(TierTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(run_number("1 + 2 * 3 - 4 / 2;", GetParam()), 5.0);
  EXPECT_DOUBLE_EQ(run_number("(1 + 2) * (3 + 4);", GetParam()), 21.0);
  EXPECT_DOUBLE_EQ(run_number("7 % 3;", GetParam()), 1.0);
  EXPECT_DOUBLE_EQ(run_number("-5 + +3;", GetParam()), -2.0);
}

TEST_P(TierTest, BitwiseMatchesJsSemantics) {
  EXPECT_DOUBLE_EQ(run_number("(0xff & 0x0f) | 0x30;", GetParam()), 0x3f);
  EXPECT_DOUBLE_EQ(run_number("1 << 10;", GetParam()), 1024.0);
  EXPECT_DOUBLE_EQ(run_number("-8 >> 1;", GetParam()), -4.0);
  EXPECT_DOUBLE_EQ(run_number("-1 >>> 28;", GetParam()), 15.0);
  EXPECT_DOUBLE_EQ(run_number("~5;", GetParam()), -6.0);
}

TEST_P(TierTest, VariablesAndCompoundAssignment) {
  EXPECT_DOUBLE_EQ(run_number("var x = 2; x += 3; x *= 4; x;", GetParam()),
                   20.0);
  EXPECT_DOUBLE_EQ(run_number("var a = 1, b = 2; a + b;", GetParam()), 3.0);
  EXPECT_DOUBLE_EQ(run_number("var i = 0; i++; i++; ++i; i;", GetParam()),
                   3.0);
  EXPECT_DOUBLE_EQ(run_number("var i = 5; var j = i++; j * 10 + i;",
                              GetParam()),
                   56.0);
}

TEST_P(TierTest, ControlFlow) {
  EXPECT_DOUBLE_EQ(
      run_number("var s = 0; for (var i = 0; i < 10; i++) s += i; s;",
                 GetParam()),
      45.0);
  EXPECT_DOUBLE_EQ(
      run_number("var n = 100, c = 0; while (n > 1) { n = n / 2; c++; } c;",
                 GetParam()),
      7.0);
  EXPECT_DOUBLE_EQ(
      run_number("var x = 5; if (x > 3) x = 1; else x = 2; x;", GetParam()),
      1.0);
  EXPECT_DOUBLE_EQ(run_number("true ? 10 : 20;", GetParam()), 10.0);
  EXPECT_DOUBLE_EQ(run_number("0 && 5 || 7;", GetParam()), 7.0);
}

TEST_P(TierTest, BreakAndContinue) {
  EXPECT_DOUBLE_EQ(
      run_number("var s = 0; for (var i = 0; i < 100; i++) { if (i == 5) "
                 "break; s += i; } s;",
                 GetParam()),
      10.0);
  EXPECT_DOUBLE_EQ(
      run_number("var s = 0; for (var i = 0; i < 10; i++) { if (i % 2 == 0) "
                 "continue; s += i; } s;",
                 GetParam()),
      25.0);
  EXPECT_DOUBLE_EQ(
      run_number("var n = 0; while (true) { n++; if (n >= 7) break; } n;",
                 GetParam()),
      7.0);
  // Nested loops: break only exits the inner loop.
  EXPECT_DOUBLE_EQ(
      run_number("var c = 0; for (var i = 0; i < 3; i++) { for (var j = 0; "
                 "j < 10; j++) { if (j == 2) break; c++; } } c;",
                 GetParam()),
      6.0);
  // break/continue outside a loop is a compile/run error.
  jsvm::JsEngine engine({.jit_enabled = GetParam()});
  EXPECT_FALSE(engine.run("break;").is_ok());
}

TEST_P(TierTest, FunctionsAndRecursion) {
  EXPECT_DOUBLE_EQ(run_number(
                       "function add(a, b) { return a + b; } add(2, 3);",
                       GetParam()),
                   5.0);
  EXPECT_DOUBLE_EQ(
      run_number("function fib(n) { if (n < 2) return n; return fib(n-1) + "
                 "fib(n-2); } fib(12);",
                 GetParam()),
      144.0);
  // Mutual recursion across definition order.
  EXPECT_DOUBLE_EQ(
      run_number("function isEven(n) { if (n == 0) return 1; return "
                 "isOdd(n-1); } function isOdd(n) { if (n == 0) return 0; "
                 "return isEven(n-1); } isEven(10);",
                 GetParam()),
      1.0);
}

TEST_P(TierTest, ArraysAndStrings) {
  EXPECT_DOUBLE_EQ(run_number("var a = [1, 2, 3]; a[0] + a[2] + a.length;",
                              GetParam()),
                   7.0);
  EXPECT_DOUBLE_EQ(
      run_number("var a = Array(4); a[3] = 7; a.push(9); a[3] + a[4] + "
                 "a.length;",
                 GetParam()),
      21.0);
  EXPECT_DOUBLE_EQ(run_number("\"abc\".length + \"abc\".charCodeAt(0);",
                              GetParam()),
                   100.0);
  EXPECT_DOUBLE_EQ(
      run_number("var s = \"hello\" + \" \" + \"world\"; s.indexOf(\"world\");",
                 GetParam()),
      6.0);
  EXPECT_DOUBLE_EQ(
      run_number("\"abcdef\".substring(2, 4).charCodeAt(0);", GetParam()),
      99.0);
  EXPECT_DOUBLE_EQ(
      run_number("String.fromCharCode(65, 66).charCodeAt(1);", GetParam()),
      66.0);
}

TEST_P(TierTest, MathBuiltins) {
  EXPECT_DOUBLE_EQ(run_number("Math.floor(3.7);", GetParam()), 3.0);
  EXPECT_DOUBLE_EQ(run_number("Math.max(2, Math.min(5, 9));", GetParam()),
                   5.0);
  EXPECT_DOUBLE_EQ(run_number("Math.pow(2, 10);", GetParam()), 1024.0);
  EXPECT_DOUBLE_EQ(run_number("Math.abs(-4.5);", GetParam()), 4.5);
}

TEST_P(TierTest, RegexBuiltins) {
  EXPECT_DOUBLE_EQ(
      run_number("__regex_test(\"a+b\", \"xxaaabzz\") ? 1 : 0;", GetParam()),
      1.0);
  EXPECT_DOUBLE_EQ(
      run_number("__regex_test(\"^z\", \"xxaaabzz\") ? 1 : 0;", GetParam()),
      0.0);
  EXPECT_DOUBLE_EQ(
      run_number("__regex_match_count(\"[0-9]+\", \"a1b22c333\");",
                 GetParam()),
      3.0);
}

TEST_P(TierTest, ParseErrorsSurface) {
  JsEngine engine({.jit_enabled = GetParam()});
  EXPECT_FALSE(engine.run("var = ;").is_ok());
  EXPECT_FALSE(engine.run("foo(").is_ok());
  EXPECT_FALSE(engine.run("nosuchfunction(1);").is_ok());
}

INSTANTIATE_TEST_SUITE_P(BothTiers, TierTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Jit" : "Interp";
                         });

TEST(JsvmParityTest, SunspiderWorkloadsAgreeAcrossTiers) {
  for (const auto& workload : sunspider::workloads()) {
    JsEngine jit({.jit_enabled = true});
    JsEngine interp({.jit_enabled = false});
    auto a = jit.run(workload.source);
    auto b = interp.run(workload.source);
    ASSERT_TRUE(a.is_ok()) << workload.category << ": "
                           << a.status().to_string();
    ASSERT_TRUE(b.is_ok()) << workload.category << ": "
                           << b.status().to_string();
    EXPECT_DOUBLE_EQ(a->to_number(), b->to_number()) << workload.category;
    // Results are real numbers, not NaN/undefined.
    EXPECT_FALSE(std::isnan(a->to_number())) << workload.category;
  }
}

TEST(JsvmParityTest, JitIsSubstantiallyFaster) {
  // The Figure 5 lever: the interpreter tier must be several times slower.
  // Measured over a mixed workload to keep the test robust.
  double jit_total = 0;
  double interp_total = 0;
  for (const auto& workload : sunspider::workloads()) {
    JsEngine jit({.jit_enabled = true});
    JsEngine interp({.jit_enabled = false});
    const auto t0 = now_ns();
    ASSERT_TRUE(jit.run(workload.source).is_ok());
    const auto t1 = now_ns();
    ASSERT_TRUE(interp.run(workload.source).is_ok());
    const auto t2 = now_ns();
    jit_total += static_cast<double>(t1 - t0);
    interp_total += static_cast<double>(t2 - t1);
  }
  EXPECT_GT(interp_total / jit_total, 2.0);
}

TEST(JsvmRegexTest, NoJitTierRecompilesRegexesEveryCall) {
  constexpr std::string_view kProgram =
      "var i, n = 0;"
      "for (i = 0; i < 10; i++) n += __regex_test(\"ab+c\", \"xabbbcx\") ? 1 "
      ": 0; n;";
  JsEngine jit({.jit_enabled = true});
  JsEngine interp({.jit_enabled = false});
  ASSERT_TRUE(jit.run(kProgram).is_ok());
  ASSERT_TRUE(interp.run(kProgram).is_ok());
  EXPECT_EQ(jit.regex_compiles(), 1u);      // cached
  EXPECT_EQ(interp.regex_compiles(), 10u);  // recompiled per call
}

TEST(RegexTest, CoreSyntax) {
  const auto matches = [](std::string_view pattern, std::string_view text) {
    auto regex = Regex::compile(pattern);
    EXPECT_TRUE(regex.is_ok()) << pattern;
    return regex.is_ok() && regex->test(text);
  };
  EXPECT_TRUE(matches("abc", "xxabcxx"));
  EXPECT_FALSE(matches("abc", "ab"));
  EXPECT_TRUE(matches("a.c", "abc"));
  EXPECT_TRUE(matches("ab*c", "ac"));
  EXPECT_TRUE(matches("ab*c", "abbbc"));
  EXPECT_TRUE(matches("ab+c", "abc"));
  EXPECT_FALSE(matches("ab+c", "ac"));
  EXPECT_TRUE(matches("ab?c", "ac"));
  EXPECT_TRUE(matches("[a-c]+d", "abcd"));
  EXPECT_FALSE(matches("[^a-c]d", "cd"));
  EXPECT_TRUE(matches("cat|dog", "hotdog"));
  EXPECT_TRUE(matches("^start", "start here"));
  EXPECT_FALSE(matches("^start", "false start"));
  EXPECT_TRUE(matches("end$", "the end"));
  EXPECT_TRUE(matches("(ab)+c", "ababc"));
  EXPECT_TRUE(matches("\\d+", "a42b"));
  EXPECT_FALSE(matches("\\d+", "abc"));
  EXPECT_TRUE(matches("a\\.b", "a.b"));
  EXPECT_FALSE(matches("a\\.b", "axb"));
}

TEST(RegexTest, MatchCount) {
  auto regex = Regex::compile("ab");
  ASSERT_TRUE(regex.is_ok());
  EXPECT_EQ(regex->match_count("abxabxab"), 3);
  EXPECT_EQ(regex->match_count("zzz"), 0);
  auto greedy = Regex::compile("a+");
  ASSERT_TRUE(greedy.is_ok());
  EXPECT_EQ(greedy->match_count("aaa b aa"), 2);
}

TEST(RegexTest, BadPatternsRejected) {
  EXPECT_FALSE(Regex::compile("*a").is_ok());
  EXPECT_FALSE(Regex::compile("(ab").is_ok());
  EXPECT_FALSE(Regex::compile("[ab").is_ok());
}

}  // namespace
}  // namespace cycada::jsvm
