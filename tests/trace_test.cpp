// Tests for the src/trace subsystem: ring-buffer wraparound and drop
// accounting, concurrent multi-thread span recording, histogram percentile
// math against known distributions, and well-formed Chrome trace JSON
// export (parsed back with a minimal JSON reader).
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string_view>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "trace/metrics.h"

namespace cycada::trace {
namespace {

// --- Minimal JSON reader (just enough to validate our own exports) --------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }

  bool parse_number(JsonValue& out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    out.number = std::strtod(begin, &end);
    if (end == begin) return false;
    out.kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            out += '?';  // close enough for validation purposes
            pos_ += 4;
            break;
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TraceEvent make_event(const char* category, const char* name) {
  TraceEvent event{};
  std::snprintf(event.category, kMaxCategoryChars, "%s", category);
  std::snprintf(event.name, kMaxNameChars, "%s", name);
  event.start_ns = 1;
  event.duration_ns = 2;
  return event;
}

// Tracer state is process-global; leave it disabled and empty between tests.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }
};

// --- Ring buffer ----------------------------------------------------------

TEST(ThreadBufferTest, CapacityRoundsUpToPowerOfTwo) {
  ThreadBuffer buffer(1, 6);
  EXPECT_EQ(buffer.capacity(), 8u);
}

TEST(ThreadBufferTest, WraparoundDropsNewestAndCounts) {
  ThreadBuffer buffer(7, 8);
  const TraceEvent event = make_event("test", "span");
  for (int i = 0; i < 20; ++i) buffer.push(event);
  EXPECT_EQ(buffer.dropped(), 12u);

  std::vector<TraceEvent> drained;
  EXPECT_EQ(buffer.drain(drained), 8u);
  ASSERT_EQ(drained.size(), 8u);
  EXPECT_EQ(drained[0].tid, 7u);  // buffer stamps its thread ordinal

  // Slots freed by the drain are reusable: the ring keeps working across
  // several laps of the sequence numbers.
  for (int lap = 0; lap < 3; ++lap) {
    for (int i = 0; i < 8; ++i) EXPECT_TRUE(buffer.push(event));
    drained.clear();
    EXPECT_EQ(buffer.drain(drained), 8u);
  }
  EXPECT_EQ(buffer.dropped(), 12u);  // no further drops
}

// --- Tracer ---------------------------------------------------------------

TEST_F(TraceTest, ScopesAndInstantsAreCollected) {
  Tracer::instance().set_enabled(true);
  {
    TRACE_SCOPE("unit", "outer");
    TRACE_INSTANT("unit", "marker");
  }
  const auto events = Tracer::instance().collect();
  int spans = 0;
  int instants = 0;
  for (const TraceEvent& event : events) {
    if (std::string_view(event.category) != "unit") continue;
    if (event.type == EventType::kComplete) {
      ++spans;
      EXPECT_STREQ(event.name, "outer");
      EXPECT_GE(event.duration_ns, 0);
    } else {
      ++instants;
      EXPECT_STREQ(event.name, "marker");
    }
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  {
    TRACE_SCOPE("unit", "ignored");
    TRACE_INSTANT("unit", "ignored");
  }
  EXPECT_TRUE(Tracer::instance().collect().empty());
}

TEST_F(TraceTest, ConcurrentSpanRecordingFromManyThreads) {
  Tracer::instance().set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::atomic<bool> stop{false};

  // A concurrent drainer exercises the producer/consumer synchronization
  // while spans are being recorded (the TSan-relevant interleaving).
  std::thread drainer([&stop] {
    while (!stop.load()) (void)Tracer::instance().collect();
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TRACE_SCOPE("mt", "worker-span");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  stop.store(true);
  drainer.join();

  const auto events = Tracer::instance().collect();
  std::set<std::uint32_t> tids;
  int count = 0;
  for (const TraceEvent& event : events) {
    if (std::string_view(event.category) != "mt") continue;
    ++count;
    tids.insert(event.tid);
  }
  EXPECT_EQ(count, kThreads * kSpans);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

// --- Histogram ------------------------------------------------------------

TEST(HistogramTest, PercentilesOfBimodalDistribution) {
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.record(100);
  for (int i = 0; i < 900; ++i) histogram.record(1000);
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_EQ(histogram.sum(), 100 * 100 + 900 * 1000);
  EXPECT_EQ(histogram.min(), 100);
  EXPECT_EQ(histogram.max(), 1000);
  // 10% of samples are 100 ns; everything from p10 up lands in the 1000 ns
  // bucket (upper bound clamped to the observed max).
  EXPECT_GE(histogram.percentile(5), 100);
  EXPECT_LE(histogram.percentile(5), 150);
  EXPECT_EQ(histogram.percentile(50), 1000);
  EXPECT_EQ(histogram.percentile(95), 1000);
  EXPECT_EQ(histogram.percentile(99), 1000);
}

TEST(HistogramTest, PercentilesOfUniformDistribution) {
  Histogram histogram;
  for (int v = 1; v <= 1000; ++v) histogram.record(v);
  // Buckets are ±25% wide, so the estimate lands near the true percentile.
  EXPECT_GE(histogram.percentile(50), 400);
  EXPECT_LE(histogram.percentile(50), 650);
  EXPECT_GE(histogram.percentile(99), 900);
  EXPECT_LE(histogram.percentile(99), 1000);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.percentile(50), 0);
  EXPECT_EQ(histogram.min(), 0);
}

TEST(HistogramTest, ConcurrentRecordingSumsExactly) {
  Histogram histogram;
  constexpr int kThreads = 4;
  constexpr int kSamples = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 1; i <= kSamples; ++i) histogram.record(i);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kSamples);
  EXPECT_EQ(histogram.sum(),
            static_cast<std::int64_t>(kThreads) * kSamples * (kSamples + 1) / 2);
  EXPECT_EQ(histogram.min(), 1);
  EXPECT_EQ(histogram.max(), kSamples);
}

// --- Chrome JSON export ---------------------------------------------------

TEST_F(TraceTest, ChromeJsonExportParsesBack) {
  Tracer& tracer = Tracer::instance();
  tracer.set_enabled(true);
  tracer.record_complete("alpha", "span-a", 1000, 500);
  tracer.record_complete("beta", "evil\"name\\with\nescapes", 2000, 250);
  tracer.record_instant("alpha", "tick");

  const std::string json = chrome_trace_json();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(root)) << json;
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events.array.size(), 3u);

  std::set<std::string> categories;
  std::set<std::string> phases;
  std::set<std::string> names;
  for (const JsonValue& event : events.array) {
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    for (const char* key : {"name", "cat", "ph", "ts", "pid", "tid"}) {
      EXPECT_TRUE(event.has(key)) << "missing " << key;
    }
    categories.insert(event.at("cat").string);
    phases.insert(event.at("ph").string);
    names.insert(event.at("name").string);
    EXPECT_GT(event.at("tid").number, 0);
  }
  EXPECT_TRUE(categories.count("alpha"));
  EXPECT_TRUE(categories.count("beta"));
  EXPECT_TRUE(phases.count("X"));
  EXPECT_TRUE(phases.count("i"));
  EXPECT_TRUE(names.count("evil\"name\\with\nescapes"));
}

// --- Metrics registry -----------------------------------------------------

TEST(MetricsTest, RegistryCountersAndSnapshot) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.reset();
  Counter& counter = registry.counter("test.counter");
  counter.add();
  counter.add(4);
  EXPECT_EQ(counter.value(), 5u);
  EXPECT_EQ(&registry.counter("test.counter"), &counter);  // deduplicated

  Histogram& histogram = registry.histogram("test.latency_ns");
  histogram.record(1000);
  histogram.record(3000);

  const MetricsSnapshot snapshot = registry.snapshot();
  bool found_counter = false;
  bool found_histogram = false;
  for (const auto& c : snapshot.counters) {
    if (c.name == "test.counter") {
      found_counter = true;
      EXPECT_EQ(c.value, 5u);
    }
  }
  for (const auto& h : snapshot.histograms) {
    if (h.name == "test.latency_ns") {
      found_histogram = true;
      EXPECT_EQ(h.count, 2u);
      EXPECT_EQ(h.sum, 4000);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_histogram);

  std::ostringstream summary;
  registry.dump_summary(summary);
  EXPECT_NE(summary.str().find("test.counter"), std::string::npos);
  EXPECT_NE(summary.str().find("test.latency_ns"), std::string::npos);

  JsonValue root;
  ASSERT_TRUE(JsonParser(snapshot.to_json()).parse(root));
  EXPECT_EQ(root.at("counters").at("test.counter").number, 5);
  EXPECT_EQ(root.at("histograms").at("test.latency_ns").at("count").number, 2);

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
}

}  // namespace
}  // namespace cycada::trace
