#include "android_gl/egl.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "android_gl/surface_flinger.h"
#include "android_gl/ui_wrapper.h"
#include "android_gl/vendor.h"
#include "gpu/device.h"
#include "kernel/kernel.h"

namespace cycada::android_gl {
namespace {

class AndroidGlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel::Kernel::instance().reset();
    gpu::GpuDevice::instance().reset();
    gmem::GrallocAllocator::instance().reset();
    linker::Linker::instance().reset();
    // Register main thread first so it is the thread-group leader.
    kernel::Kernel::instance().register_current_thread(
        kernel::Persona::kAndroid);
    egl_ = open_android_egl();
    ASSERT_NE(egl_, nullptr);
    ASSERT_EQ(egl_->eglInitialize(), EGL_TRUE);
  }

  AndroidEgl* egl_ = nullptr;
};

TEST_F(AndroidGlTest, InitializeIsIdempotent) {
  EXPECT_EQ(egl_->eglInitialize(), EGL_TRUE);
  EXPECT_NE(egl_->gles(), nullptr);
}

TEST_F(AndroidGlTest, RenderAndSwapWindowSurface) {
  EglSurface* surface = egl_->eglCreateWindowSurface(16, 16);
  ASSERT_NE(surface, nullptr);
  EglContext* context = egl_->eglCreateContext(2);
  ASSERT_NE(context, nullptr);
  ASSERT_EQ(egl_->eglMakeCurrent(surface, context), EGL_TRUE);

  glcore::GlesEngine& gl = *egl_->gles();
  gl.glViewport(0, 0, 16, 16);
  gl.glClearColor(1.f, 0.f, 0.f, 1.f);
  gl.glClear(glcore::GL_COLOR_BUFFER_BIT);
  ASSERT_EQ(egl_->eglSwapBuffers(surface), EGL_TRUE);
  // After the swap, the front buffer holds the red frame.
  EXPECT_EQ(const_cast<gmem::GraphicBuffer&>(surface->front_buffer())
                .pixels32()[0],
            0xff0000ffu);

  // Rendering now goes to the other buffer; another clear + swap shows it.
  gl.glClearColor(0.f, 1.f, 0.f, 1.f);
  gl.glClear(glcore::GL_COLOR_BUFFER_BIT);
  ASSERT_EQ(egl_->eglSwapBuffers(surface), EGL_TRUE);
  EXPECT_EQ(const_cast<gmem::GraphicBuffer&>(surface->front_buffer())
                .pixels32()[0],
            0xff00ff00u);
}

TEST_F(AndroidGlTest, SecondGlesVersionIsRejectedPerProcess) {
  // The paper-§8 restriction: one GLES API version per vendor connection.
  EglContext* v2 = egl_->eglCreateContext(2);
  ASSERT_NE(v2, nullptr);
  EglContext* v2b = egl_->eglCreateContext(2);
  EXPECT_NE(v2b, nullptr);  // same version: fine
  EglContext* v1 = egl_->eglCreateContext(1);
  EXPECT_EQ(v1, nullptr);
  EXPECT_EQ(egl_->eglGetError(), EGL_BAD_MATCH);
}

TEST_F(AndroidGlTest, ContextAffinityRuleRejectsOtherThreads) {
  // Paper §7: a context may be used by a thread only "if it or its thread
  // group leader created the context". A worker-created context is off
  // limits to every other thread — including the leader.
  EglSurface* surface = egl_->eglCreateWindowSurface(8, 8);
  EglContext* context = nullptr;
  std::thread creator([&] {
    kernel::Kernel::instance().register_current_thread(
        kernel::Persona::kAndroid);
    context = egl_->eglCreateContext(2);
  });
  creator.join();
  ASSERT_NE(context, nullptr);

  EGLBoolean result = EGL_TRUE;
  EGLint error = EGL_SUCCESS;
  std::thread other([&] {
    kernel::Kernel::instance().register_current_thread(
        kernel::Persona::kAndroid);
    result = egl_->eglMakeCurrent(surface, context);
    error = egl_->eglGetError();
  });
  other.join();
  EXPECT_EQ(result, EGL_FALSE);
  EXPECT_EQ(error, EGL_BAD_ACCESS);
  EXPECT_EQ(egl_->eglMakeCurrent(surface, context), EGL_FALSE);
  EXPECT_EQ(egl_->eglGetError(), EGL_BAD_ACCESS);

  // A LEADER-created context, by contrast, is usable from any thread.
  EglContext* leader_context = egl_->eglCreateContext(2);
  ASSERT_NE(leader_context, nullptr);
  EGLBoolean worker_result = EGL_FALSE;
  std::thread worker([&] {
    kernel::Kernel::instance().register_current_thread(
        kernel::Persona::kAndroid);
    worker_result = egl_->eglMakeCurrent(surface, leader_context);
  });
  worker.join();
  EXPECT_EQ(worker_result, EGL_TRUE);
}

TEST_F(AndroidGlTest, MainThreadContextUsableByCreator) {
  EglSurface* surface = egl_->eglCreateWindowSurface(8, 8);
  EglContext* context = egl_->eglCreateContext(2);
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(egl_->eglMakeCurrent(surface, context), EGL_TRUE);
  EXPECT_EQ(egl_->eglGetCurrentContext(), context);
  EXPECT_EQ(egl_->eglMakeCurrent(nullptr, nullptr), EGL_TRUE);
  EXPECT_EQ(egl_->eglGetCurrentContext(), nullptr);
}

TEST_F(AndroidGlTest, ImpersonationSatisfiesAffinity) {
  // An unrelated thread CAN use the context while impersonating its
  // creator — the exact mechanism Cycada relies on (paper §7.1).
  EglSurface* surface = egl_->eglCreateWindowSurface(8, 8);
  EglContext* context = nullptr;
  kernel::Tid creator_tid = kernel::kInvalidTid;
  std::thread creator([&] {
    kernel::Kernel::instance().register_current_thread(
        kernel::Persona::kAndroid);
    creator_tid = kernel::sys_gettid();
    context = egl_->eglCreateContext(2);
  });
  creator.join();
  ASSERT_NE(context, nullptr);

  EGLBoolean denied = EGL_TRUE, allowed = EGL_FALSE;
  std::thread other([&] {
    kernel::Kernel::instance().register_current_thread(
        kernel::Persona::kAndroid);
    denied = egl_->eglMakeCurrent(surface, context);
    (void)egl_->eglGetError();
    kernel::sys_impersonate(creator_tid);
    allowed = egl_->eglMakeCurrent(surface, context);
    kernel::sys_impersonate(kernel::kInvalidTid);
  });
  other.join();
  EXPECT_EQ(denied, EGL_FALSE);
  EXPECT_EQ(allowed, EGL_TRUE);
}

TEST_F(AndroidGlTest, EglImageLifecycle) {
  auto buffer = gmem::GrallocAllocator::instance().allocate(
      4, 4, PixelFormat::kRgba8888, gmem::kUsageGpuTexture);
  ASSERT_TRUE(buffer.is_ok());
  glcore::EglImage* image = egl_->eglCreateImageKHR((*buffer)->id());
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(image->buffer.get(), buffer->get());
  EXPECT_EQ(egl_->eglDestroyImageKHR(image), EGL_TRUE);
  EXPECT_EQ(egl_->eglDestroyImageKHR(image), EGL_FALSE);
  EXPECT_EQ(egl_->eglCreateImageKHR(999999), nullptr);
}

TEST_F(AndroidGlTest, MultiContextCreatesIsolatedReplicas) {
  // Stock path locks the process to one version...
  EglContext* v2 = egl_->eglCreateContext(2);
  ASSERT_NE(v2, nullptr);
  ASSERT_EQ(egl_->eglCreateContext(1), nullptr);
  (void)egl_->eglGetError();

  // ...but an MC replica is a fresh vendor stack: a v1 connection can now
  // coexist in the same process (paper §8).
  const int replica_id = egl_->eglReInitializeMC();
  ASSERT_GT(replica_id, 0);
  EglConnection* replica = egl_->connection_by_id(replica_id);
  ASSERT_NE(replica, nullptr);
  ASSERT_NE(replica->ui_wrapper, nullptr);
  EXPECT_NE(replica->engine, egl_->connection_by_id(0)->engine);
  ASSERT_TRUE(replica->ui_wrapper->initialize(1, 8, 8).is_ok());
  EXPECT_EQ(replica->ui_wrapper->engine(), replica->engine);

  // The vendor stack was genuinely re-instanced: three vendor libraries
  // loaded twice each (libui_wrapper + GLES + nvrm + nvos).
  EXPECT_EQ(linker::Linker::instance().live_copy_count(kVendorGlesLib), 2);
  EXPECT_EQ(linker::Linker::instance().live_copy_count(kNvOsLib), 2);
}

TEST_F(AndroidGlTest, MultiContextTlsSwitching) {
  const int a = egl_->eglReInitializeMC();
  const int b = egl_->eglReInitializeMC();
  ASSERT_GT(a, 0);
  ASSERT_GT(b, 0);
  EXPECT_EQ(egl_->current_connection(), egl_->connection_by_id(b));
  EXPECT_EQ(egl_->eglSwitchMC(a), EGL_TRUE);
  EXPECT_EQ(egl_->current_connection(), egl_->connection_by_id(a));
  EXPECT_EQ(egl_->eglSwitchMC(0), EGL_TRUE);
  EXPECT_EQ(egl_->current_connection(), egl_->connection_by_id(0));
  EXPECT_EQ(egl_->eglSwitchMC(12345), EGL_FALSE);

  // Get/SetTLSMC round-trips the per-thread binding.
  void* slots[2] = {nullptr, nullptr};
  ASSERT_EQ(egl_->eglSwitchMC(a), EGL_TRUE);
  ASSERT_EQ(egl_->eglGetTLSMC(slots, 2), EGL_TRUE);
  EXPECT_EQ(slots[0], egl_->connection_by_id(a));
  ASSERT_EQ(egl_->eglSwitchMC(0), EGL_TRUE);
  ASSERT_EQ(egl_->eglSetTLSMC(slots, 2), EGL_TRUE);
  EXPECT_EQ(egl_->current_connection(), egl_->connection_by_id(a));
}

class UiWrapperTest : public AndroidGlTest {
 protected:
  void SetUp() override {
    AndroidGlTest::SetUp();
    replica_id_ = egl_->eglReInitializeMC();
    ASSERT_GT(replica_id_, 0);
    wrapper_ = egl_->connection_by_id(replica_id_)->ui_wrapper;
    ASSERT_NE(wrapper_, nullptr);
  }
  int replica_id_ = 0;
  UiWrapper* wrapper_ = nullptr;
};

TEST_F(UiWrapperTest, InitializeCreatesLayerAndContext) {
  ASSERT_TRUE(wrapper_->initialize(2, 32, 32).is_ok());
  EXPECT_EQ(wrapper_->width(), 32);
  EXPECT_EQ(wrapper_->engine()->current_context_id(), wrapper_->context_id());
  EXPECT_FALSE(wrapper_->initialize(2, 32, 32).is_ok());  // double init
  EXPECT_FALSE(wrapper_->initialize(2, -1, 0).is_ok());
}

TEST_F(UiWrapperTest, EaglStylePresentPath) {
  // The full EAGL rendering pattern (paper §5): render into an offscreen
  // FBO whose renderbuffer is backed by a GraphicBuffer, then
  // draw_fbo_tex presents it to the "screen".
  ASSERT_TRUE(wrapper_->initialize(2, 16, 16).is_ok());
  glcore::GlesEngine& gl = *wrapper_->engine();

  auto drawable = wrapper_->create_drawable_buffer(16, 16);
  ASSERT_TRUE(drawable.is_ok());
  glcore::GLuint fbo = 0, rbo = 0;
  gl.glGenFramebuffers(1, &fbo);
  gl.glGenRenderbuffers(1, &rbo);
  gl.glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
  ASSERT_TRUE(wrapper_->bind_renderbuffer(rbo, *drawable).is_ok());
  gl.glBindFramebuffer(glcore::GL_FRAMEBUFFER, fbo);
  gl.glFramebufferRenderbuffer(glcore::GL_FRAMEBUFFER,
                               glcore::GL_COLOR_ATTACHMENT0,
                               glcore::GL_RENDERBUFFER, rbo);
  ASSERT_EQ(gl.glCheckFramebufferStatus(glcore::GL_FRAMEBUFFER),
            glcore::GL_FRAMEBUFFER_COMPLETE);
  gl.glViewport(0, 0, 16, 16);
  gl.glClearColor(0.f, 0.f, 1.f, 1.f);
  gl.glClear(glcore::GL_COLOR_BUFFER_BIT);

  ASSERT_TRUE(wrapper_->draw_fbo_tex(*drawable).is_ok());
  ASSERT_TRUE(wrapper_->swap_buffers().is_ok());
  const Image screen = wrapper_->front_snapshot();
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_EQ(screen.at(x, y), 0xffff0000u) << x << "," << y;  // blue
    }
  }
  // Caller state was preserved: FBO still bound.
  glcore::GLint bound = 0;
  gl.glGetIntegerv(glcore::GL_FRAMEBUFFER_BINDING, &bound);
  EXPECT_EQ(static_cast<glcore::GLuint>(bound), fbo);
}

TEST_F(UiWrapperTest, MakeCurrentEnforcesAffinity) {
  // Initialize on a worker so the replica context is NOT leader-owned.
  Status init_status = Status::internal("not run");
  kernel::Tid creator_tid = kernel::kInvalidTid;
  std::thread creator([&] {
    kernel::Kernel::instance().register_current_thread(
        kernel::Persona::kAndroid);
    creator_tid = kernel::sys_gettid();
    init_status = wrapper_->initialize(2, 8, 8);
  });
  creator.join();
  ASSERT_TRUE(init_status.is_ok());

  // The leader (and any other thread) is denied...
  EXPECT_EQ(wrapper_->make_current().code(), StatusCode::kPermissionDenied);
  // ...unless impersonating the creator (paper §7.1).
  kernel::sys_impersonate(creator_tid);
  EXPECT_TRUE(wrapper_->make_current().is_ok());
  kernel::sys_impersonate(kernel::kInvalidTid);
}

TEST_F(UiWrapperTest, TlsRoundTripMovesCurrentContext) {
  ASSERT_TRUE(wrapper_->initialize(2, 8, 8).is_ok());
  auto tls = wrapper_->get_tls();
  ASSERT_EQ(tls.size(), 1u);
  EXPECT_NE(tls[0], nullptr);
  ASSERT_TRUE(wrapper_->clear_current().is_ok());
  EXPECT_EQ(wrapper_->get_tls()[0], nullptr);
  ASSERT_TRUE(wrapper_->set_tls(tls).is_ok());
  EXPECT_EQ(wrapper_->engine()->current_context_id(), wrapper_->context_id());
}

TEST_F(UiWrapperTest, CopyTexBufReadsBackTexels) {
  ASSERT_TRUE(wrapper_->initialize(2, 8, 8).is_ok());
  glcore::GlesEngine& gl = *wrapper_->engine();
  glcore::GLuint tex = 0;
  gl.glGenTextures(1, &tex);
  gl.glBindTexture(glcore::GL_TEXTURE_2D, tex);
  std::vector<std::uint32_t> texels(8 * 8, 0xff00ff00u);
  gl.glTexImage2D(glcore::GL_TEXTURE_2D, 0, glcore::GL_RGBA, 8, 8, 0,
                  glcore::GL_RGBA, glcore::GL_UNSIGNED_BYTE, texels.data());
  auto dst = wrapper_->create_drawable_buffer(8, 8);
  ASSERT_TRUE(dst.is_ok());
  ASSERT_TRUE(wrapper_->copy_tex_buf(tex, *dst).is_ok());
  auto buffer = gmem::GrallocAllocator::instance().find(*dst);
  ASSERT_NE(buffer, nullptr);
  EXPECT_EQ(buffer->pixels32()[0], 0xff00ff00u);
  EXPECT_EQ(buffer->pixels32()[7 * buffer->stride_px() + 7], 0xff00ff00u);
}

TEST_F(UiWrapperTest, ReplicaGlobalsHaveDistinctAddresses) {
  const int second = egl_->eglReInitializeMC();
  ASSERT_GT(second, 0);
  linker::Linker& linker = linker::Linker::instance();
  EglConnection* a = egl_->connection_by_id(replica_id_);
  EglConnection* b = egl_->connection_by_id(second);
  void* ga = linker.dlsym(a->library, "replica_global");
  void* gb = linker.dlsym(b->library, "replica_global");
  void* va = linker.dlsym(a->library, "vendor_global");
  void* vb = linker.dlsym(b->library, "vendor_global");
  EXPECT_NE(ga, nullptr);
  EXPECT_NE(ga, gb);
  EXPECT_NE(va, nullptr);
  EXPECT_NE(va, vb);
}



TEST_F(AndroidGlTest, PbufferSurfaceIsSingleBuffered) {
  EglSurface* pbuffer = egl_->eglCreatePbufferSurface(8, 8);
  ASSERT_NE(pbuffer, nullptr);
  EglContext* context = egl_->eglCreateContext(2);
  ASSERT_EQ(egl_->eglMakeCurrent(pbuffer, context), EGL_TRUE);
  glcore::GlesEngine& gl = *egl_->gles();
  gl.glViewport(0, 0, 8, 8);
  gl.glClearColor(0.f, 0.f, 1.f, 1.f);
  gl.glClear(glcore::GL_COLOR_BUFFER_BIT);
  // A pbuffer has one buffer: swapping is a no-op flip onto itself, and the
  // rendered pixels are immediately the "front" content.
  ASSERT_EQ(egl_->eglSwapBuffers(pbuffer), EGL_TRUE);
  EXPECT_EQ(const_cast<gmem::GraphicBuffer&>(pbuffer->front_buffer())
                .pixels32()[0],
            0xffff0000u);
  EXPECT_EQ(&pbuffer->front_buffer(), &pbuffer->back_buffer());
  EXPECT_EQ(egl_->eglDestroySurface(pbuffer), EGL_TRUE);
  EXPECT_EQ(egl_->eglDestroySurface(pbuffer), EGL_FALSE);
}

class SurfaceFlingerTest : public AndroidGlTest {
 protected:
  void SetUp() override {
    AndroidGlTest::SetUp();
    SurfaceFlinger::instance().reset();
  }
};

TEST_F(SurfaceFlingerTest, ComposesLayersInZOrder) {
  // Two windows: red behind, green (smaller) in front at an offset.
  EglSurface* back = egl_->eglCreateWindowSurface(32, 32);
  EglSurface* front = egl_->eglCreateWindowSurface(8, 8);
  EglContext* context = egl_->eglCreateContext(2);
  ASSERT_NE(context, nullptr);

  const auto render_to = [&](EglSurface* surface, float r, float g, float b) {
    ASSERT_EQ(egl_->eglMakeCurrent(surface, context), EGL_TRUE);
    glcore::GlesEngine& gl = *egl_->gles();
    gl.glViewport(0, 0, surface->width(), surface->height());
    gl.glClearColor(r, g, b, 1.f);
    gl.glClear(glcore::GL_COLOR_BUFFER_BIT);
    ASSERT_EQ(egl_->eglSwapBuffers(surface), EGL_TRUE);
  };
  render_to(back, 1.f, 0.f, 0.f);
  render_to(front, 0.f, 1.f, 0.f);

  SurfaceFlinger& flinger = SurfaceFlinger::instance();
  flinger.add_layer(back, 0, 0, /*z=*/0);
  const auto top = flinger.add_layer(front, 4, 4, /*z=*/1);
  EXPECT_EQ(flinger.layer_count(), 2u);

  Image display = flinger.compose(32, 32);
  EXPECT_EQ(display.at(0, 0), 0xff0000ffu);    // red visible at the corner
  EXPECT_EQ(display.at(6, 6), 0xff00ff00u);    // green on top in the middle
  EXPECT_EQ(display.at(20, 20), 0xff0000ffu);  // red beyond the green window

  // Translucent overlay blends with what is underneath.
  ASSERT_TRUE(flinger.set_layer_alpha(top, 0.5f).is_ok());
  display = flinger.compose(32, 32);
  const Color blended = unpack_rgba8888(display.at(6, 6));
  EXPECT_NEAR(blended.r, 0.5f, 0.02f);
  EXPECT_NEAR(blended.g, 0.5f, 0.02f);

  // Moving and removing layers.
  ASSERT_TRUE(flinger.set_layer_position(top, 24, 24).is_ok());
  display = flinger.compose(32, 32);
  EXPECT_EQ(display.at(6, 6), 0xff0000ffu);
  ASSERT_TRUE(flinger.remove_layer(top).is_ok());
  EXPECT_FALSE(flinger.remove_layer(top).is_ok());
  EXPECT_EQ(flinger.layer_count(), 1u);
}

TEST_F(SurfaceFlingerTest, OffscreenLayersAreClipped) {
  EglSurface* surface = egl_->eglCreateWindowSurface(16, 16);
  EglContext* context = egl_->eglCreateContext(2);
  ASSERT_EQ(egl_->eglMakeCurrent(surface, context), EGL_TRUE);
  glcore::GlesEngine& gl = *egl_->gles();
  gl.glViewport(0, 0, 16, 16);
  gl.glClearColor(1.f, 1.f, 1.f, 1.f);
  gl.glClear(glcore::GL_COLOR_BUFFER_BIT);
  ASSERT_EQ(egl_->eglSwapBuffers(surface), EGL_TRUE);

  SurfaceFlinger& flinger = SurfaceFlinger::instance();
  flinger.add_layer(surface, -8, 28, 0);  // straddles two display edges
  const Image display = flinger.compose(32, 32);
  EXPECT_EQ(display.at(4, 30), 0xffffffffu);  // visible part
  EXPECT_EQ(display.at(20, 20), 0xff000000u); // background elsewhere
}

}  // namespace
}  // namespace cycada::android_gl
