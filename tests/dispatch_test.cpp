// Lock-free dispatch tests (docs/DISPATCH.md): the snapshot/RCU diplomat
// registry under concurrent readers and writers, the steady-state
// zero-lock guarantee the Table 3 microbench also asserts, and the
// lock-free read paths of the TLS tracker and the linker view. Sized to
// stay fast under TSan (scripts/check.sh builds this suite with
// -DCYCADA_TSAN=ON).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/diplomat.h"
#include "core/impersonation.h"
#include "kernel/kernel.h"
#include "linker/linker.h"
#include "util/epoch.h"
#include "util/lock_order.h"

namespace cycada {
namespace {

using core::DiplomatEntry;
using core::DiplomatId;
using core::DiplomatPattern;
using core::DiplomatRegistry;

constexpr const char* kNames[] = {"dispatch.a", "dispatch.b", "dispatch.c",
                                  "dispatch.d", "dispatch.e", "dispatch.f",
                                  "dispatch.g", "dispatch.h"};
constexpr int kNameCount = 8;

// --- Snapshot stability -----------------------------------------------------

TEST(DispatchTest, EntriesAndIdsSurviveRepublication) {
  DiplomatRegistry& registry = DiplomatRegistry::instance();
  DiplomatEntry* before[kNameCount];
  DiplomatId ids[kNameCount];
  for (int i = 0; i < kNameCount; ++i) {
    before[i] = &registry.entry(kNames[i], DiplomatPattern::kDirect);
    ids[i] = before[i]->id;
    ASSERT_NE(ids[i], core::kInvalidDiplomatId);
  }
  // Force many copy-and-publish cycles, then verify every cached pointer
  // and id still resolves to the same entry (the paper's step-1 cache must
  // never be invalidated by later registrations).
  for (int i = 0; i < 64; ++i) {
    (void)registry.entry("dispatch.churn." + std::to_string(i),
                         DiplomatPattern::kDirect);
  }
  for (int i = 0; i < kNameCount; ++i) {
    EXPECT_EQ(&registry.entry(kNames[i], DiplomatPattern::kDirect), before[i]);
    EXPECT_EQ(&registry.entry_by_id(ids[i]), before[i]);
    EXPECT_EQ(registry.resolve(kNames[i], DiplomatPattern::kDirect), ids[i]);
  }
  // Ids are dense indices into the published table. Direct table() access
  // requires an epoch guard: tables retire on every publish now.
  util::EpochReclaimer::Guard guard;
  const core::DispatchTable& table = registry.table();
  for (DiplomatId id = 0; id < table.entries.size(); ++id) {
    EXPECT_EQ(table.entries[id]->id, id);
    EXPECT_EQ(table.find(table.entries[id]->name), id);
  }
  EXPECT_EQ(table.find("dispatch.never-registered"),
            core::kInvalidDiplomatId);
}

// --- Readers vs. a registering writer ---------------------------------------

TEST(DispatchTest, ConcurrentLookupsSurviveConcurrentRegistration) {
  kernel::Kernel::instance().reset();
  DiplomatRegistry& registry = DiplomatRegistry::instance();
  DiplomatEntry* expected[kNameCount];
  for (int i = 0; i < kNameCount; ++i) {
    expected[i] = &registry.entry(kNames[i], DiplomatPattern::kDirect);
  }
  const DiplomatId id0 = registry.resolve(kNames[0], DiplomatPattern::kDirect);

  constexpr int kReaders = 4;
  constexpr int kIterations = 20000;
  constexpr int kWriterNames = 400;
  std::atomic<bool> start{false};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      kernel::Kernel::instance().register_current_thread(
          kernel::Persona::kIos);
      while (!start.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kIterations; ++i) {
        const int n = (i + t) % kNameCount;
        if (&registry.entry(kNames[n], DiplomatPattern::kDirect) !=
            expected[n]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (&registry.entry_by_id(id0) != expected[0]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // One exact-count diplomat call per reader to prove the entry the
      // lock-free path returned is the live, counting one.
      core::diplomat_call(*expected[t % kNameCount], {}, [] {});
    });
  }
  std::thread writer([&] {
    while (!start.load(std::memory_order_acquire)) {}
    for (int i = 0; i < kWriterNames; ++i) {
      (void)registry.entry("dispatch.writer." + std::to_string(i),
                           DiplomatPattern::kIndirect);
    }
  });
  start.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  writer.join();

  EXPECT_EQ(mismatches.load(), 0);
  for (int i = 0; i < kWriterNames; ++i) {
    const std::string name = "dispatch.writer." + std::to_string(i);
    EXPECT_EQ(registry.entry(name, DiplomatPattern::kIndirect).name, name);
  }
}

// --- Steady-state lock-freedom ----------------------------------------------

TEST(DispatchTest, SteadyStateLookupsNeverTakeTheRegistryMutex) {
  DiplomatRegistry& registry = DiplomatRegistry::instance();
  for (const char* name : kNames) {
    (void)registry.entry(name, DiplomatPattern::kDirect);
  }
  const DiplomatId id = registry.resolve(kNames[0], DiplomatPattern::kDirect);

  util::LockOrderGraph& graph = util::LockOrderGraph::instance();
  graph.set_recording(false);
  graph.reset();
  graph.set_recording(true);
  for (int i = 0; i < 10000; ++i) {
    (void)registry.entry(kNames[i % kNameCount], DiplomatPattern::kDirect);
    (void)registry.entry_by_id(id);
  }
  EXPECT_EQ(graph.acquisitions(util::LockLevel::kDiplomatRegistry), 0u);

  // A genuinely novel name is the slow path and must take the writer mutex
  // (proving the tally actually observes this level).
  (void)registry.entry("dispatch.novel-after-steady",
                       DiplomatPattern::kDirect);
  EXPECT_GT(graph.acquisitions(util::LockLevel::kDiplomatRegistry), 0u);
  graph.set_recording(false);
  graph.reset();
}

TEST(DispatchTest, MismatchedPatternLookupsKeepCounting) {
  DiplomatRegistry& registry = DiplomatRegistry::instance();
  DiplomatEntry& entry =
      registry.entry("dispatch.conflicted", DiplomatPattern::kDirect);
  const std::uint64_t base = entry.contract.pattern_conflicts.load();
  // The per-thread cache must not swallow mismatched lookups: each one goes
  // through the table path and is counted, like the locked design did.
  (void)registry.entry("dispatch.conflicted", DiplomatPattern::kMulti);
  (void)registry.entry("dispatch.conflicted", DiplomatPattern::kMulti);
  (void)registry.entry("dispatch.conflicted", DiplomatPattern::kMulti);
  EXPECT_EQ(entry.contract.pattern_conflicts.load(), base + 3);
}

// --- GraphicsTlsTracker slot table under concurrency -------------------------

TEST(DispatchTest, TlsTrackerMembershipIsCoherentUnderConcurrency) {
  core::GraphicsTlsTracker& tracker = core::GraphicsTlsTracker::instance();
  tracker.reset();

  constexpr int kWriterKeys = 16;  // keys 1..16 toggled by the writer
  constexpr kernel::TlsKey kStableKey = 40;
  tracker.add_well_known_key(kStableKey);

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // The stable key must be visible on both read paths at all times,
        // whatever the writer does to the other slots.
        if (!tracker.is_graphics_key(kStableKey)) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        const std::vector<kernel::TlsKey> keys = tracker.graphics_keys();
        bool found = false;
        for (const kernel::TlsKey key : keys) found |= (key == kStableKey);
        if (!found) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < 300; ++round) {
      for (kernel::TlsKey key = 1; key <= kWriterKeys; ++key) {
        tracker.add_well_known_key(key);
      }
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(errors.load(), 0);
  const std::vector<kernel::TlsKey> final_keys = tracker.graphics_keys();
  EXPECT_EQ(final_keys.size(), static_cast<std::size_t>(kWriterKeys + 1));
  for (kernel::TlsKey key = 1; key <= kWriterKeys; ++key) {
    EXPECT_TRUE(tracker.is_graphics_key(key));
  }
  EXPECT_FALSE(tracker.is_graphics_key(kStableKey + 1));
  tracker.reset();
  EXPECT_FALSE(tracker.is_graphics_key(kStableKey));
}

// --- Linker view fast path ---------------------------------------------------

class TrivialLib : public linker::LibraryInstance {
 public:
  void* symbol(std::string_view) override { return nullptr; }
};

TEST(DispatchTest, SharedCopyDlopenTakesNoLinkerMutex) {
  linker::Linker& linker = linker::Linker::instance();
  linker.reset();
  ASSERT_TRUE(linker
                  .register_image({"libdispatch_test.so", {}, [](auto&) {
                                     return std::make_unique<TrivialLib>();
                                   }})
                  .is_ok());
  auto first = linker.dlopen("libdispatch_test.so");
  ASSERT_TRUE(first.is_ok());

  util::LockOrderGraph& graph = util::LockOrderGraph::instance();
  graph.set_recording(false);
  graph.reset();
  graph.set_recording(true);
  for (int i = 0; i < 1000; ++i) {
    auto again = linker.dlopen("libdispatch_test.so");
    ASSERT_TRUE(again.is_ok());
    EXPECT_EQ(*again, *first);  // shared copy, not a private reload
    EXPECT_TRUE(linker.has_image("libdispatch_test.so"));
    EXPECT_EQ(linker.live_copy_count("libdispatch_test.so"), 1);
  }
  EXPECT_EQ(graph.acquisitions(util::LockLevel::kLinker), 0u);
  graph.set_recording(false);
  graph.reset();
  ASSERT_TRUE(linker.dlclose(*first).is_ok());
}

}  // namespace
}  // namespace cycada
