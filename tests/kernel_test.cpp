#include "kernel/kernel.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "kernel/libc.h"

namespace cycada::kernel {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override { Kernel::instance().reset(TrapModel::kCycada); }
};

TEST_F(KernelTest, FirstThreadBecomesLeader) {
  ThreadState& main = Kernel::instance().current_thread();
  EXPECT_EQ(main.tid(), main.tgid());
  EXPECT_EQ(Kernel::instance().main_tid(), main.tid());
}

TEST_F(KernelTest, ThreadsGetUniqueTids) {
  const Tid main_tid = Kernel::instance().current_thread().tid();
  Tid worker_tid = kInvalidTid;
  Tid worker_tgid = kInvalidTid;
  std::thread worker([&] {
    ThreadState& me = Kernel::instance().current_thread();
    worker_tid = me.tid();
    worker_tgid = me.tgid();
  });
  worker.join();
  EXPECT_NE(worker_tid, main_tid);
  EXPECT_EQ(worker_tgid, main_tid);
}

TEST_F(KernelTest, NullSyscallReturnsZero) {
  EXPECT_EQ(sys_null(), 0);
}

TEST_F(KernelTest, GetTidMatchesThreadState) {
  EXPECT_EQ(sys_gettid(), Kernel::instance().current_thread().tid());
}

TEST_F(KernelTest, SetPersonaSwitchesTlsArea) {
  Kernel& kernel = Kernel::instance();
  kernel.register_current_thread(Persona::kAndroid);
  auto key = kernel.tls_key_create();
  ASSERT_TRUE(key.is_ok());

  int android_value = 1;
  kernel.tls_set(*key, &android_value);
  EXPECT_EQ(kernel.tls_get(*key), &android_value);

  ASSERT_EQ(sys_set_persona(Persona::kIos), 0);
  // The iOS persona has its own TLS area: slot starts empty.
  EXPECT_EQ(kernel.tls_get(*key), nullptr);
  int ios_value = 2;
  kernel.tls_set(*key, &ios_value);
  EXPECT_EQ(kernel.tls_get(*key), &ios_value);

  ASSERT_EQ(sys_set_persona(Persona::kAndroid), 0);
  EXPECT_EQ(kernel.tls_get(*key), &android_value);
}

TEST_F(KernelTest, SetPersonaRejectsBadValue) {
  SyscallArgs args;
  args.reg[0] = 99;
  EXPECT_EQ(Kernel::instance().syscall(Sys::kSetPersona, args), kErrInval);
}

TEST_F(KernelTest, ForeignNumberingIsTranslated) {
  // In the iOS persona, syscalls are issued with foreign numbers; the native
  // index must be rejected and the foreign number accepted.
  ASSERT_EQ(sys_set_persona(Persona::kIos), 0);
  Kernel& kernel = Kernel::instance();
  // Foreign-numbered null syscall via the raw trap.
  EXPECT_EQ(kernel.trap(foreign_syscall_number(Sys::kNull), {}), 0);
  // Native index 0 is not a valid foreign number.
  EXPECT_LT(kernel.trap(static_cast<std::int32_t>(Sys::kNull), {}), 0);
  sys_set_persona(Persona::kAndroid);
}

TEST_F(KernelTest, UnknownForeignSyscallReturnsDarwinENOSYS) {
  ASSERT_EQ(sys_set_persona(Persona::kIos), 0);
  // Linux ENOSYS is 38; Darwin's is 78. The foreign caller must see 78.
  EXPECT_EQ(Kernel::instance().trap(kForeignSyscallBase + 1, {}), -78);
  sys_set_persona(Persona::kAndroid);
}

TEST_F(KernelTest, ImpersonateChangesEffectiveTid) {
  Kernel& kernel = Kernel::instance();
  const Tid self = kernel.current_thread().tid();

  Tid other = kInvalidTid;
  std::thread worker([&] { other = kernel.current_thread().tid(); });
  worker.join();

  ASSERT_EQ(sys_impersonate(other), 0);
  EXPECT_EQ(sys_gettid(), other);
  ASSERT_EQ(sys_impersonate(kInvalidTid), 0);
  EXPECT_EQ(sys_gettid(), self);
}

TEST_F(KernelTest, ImpersonateUnknownTidFails) {
  EXPECT_EQ(sys_impersonate(99999), kErrSrch);
}

TEST_F(KernelTest, LocateAndPropagateTlsAcrossThreads) {
  Kernel& kernel = Kernel::instance();
  auto key = kernel.tls_key_create();
  ASSERT_TRUE(key.is_ok());

  Tid worker_tid = kInvalidTid;
  int worker_value = 42;
  std::atomic<bool> ready{false};
  std::atomic<bool> done{false};
  void* observed_back = nullptr;

  std::thread worker([&] {
    kernel.register_current_thread(Persona::kAndroid);
    worker_tid = kernel.current_thread().tid();
    kernel.tls_set(*key, &worker_value);
    ready.store(true);
    while (!done.load()) std::this_thread::yield();
    observed_back = kernel.tls_get(*key);
  });
  while (!ready.load()) std::this_thread::yield();

  // locate_tls reads the worker's Android-persona slot.
  void* value = nullptr;
  TlsKey keys[1] = {*key};
  ASSERT_EQ(sys_locate_tls(worker_tid, Persona::kAndroid, keys, &value, 1), 0);
  EXPECT_EQ(value, &worker_value);

  // propagate_tls overwrites it; the worker sees the new value.
  int replacement = 7;
  void* new_values[1] = {&replacement};
  ASSERT_EQ(
      sys_propagate_tls(worker_tid, Persona::kAndroid, keys, new_values, 1), 0);
  done.store(true);
  worker.join();
  EXPECT_EQ(observed_back, &replacement);
}

TEST_F(KernelTest, LocateTlsValidatesArguments) {
  TlsKey keys[1] = {0};
  void* values[1] = {nullptr};
  EXPECT_EQ(sys_locate_tls(12345, Persona::kAndroid, keys, values, 1),
            kErrSrch);
  const Tid self = Kernel::instance().current_thread().tid();
  TlsKey bad_keys[1] = {kMaxTlsSlots + 5};
  EXPECT_EQ(sys_locate_tls(self, Persona::kAndroid, bad_keys, values, 1),
            kErrInval);
}

TEST_F(KernelTest, TlsKeyHooksFire) {
  Kernel& kernel = Kernel::instance();
  std::vector<TlsKey> created;
  std::vector<TlsKey> deleted;
  const int create_id =
      kernel.add_key_create_hook([&](TlsKey k) { created.push_back(k); });
  const int delete_id =
      kernel.add_key_delete_hook([&](TlsKey k) { deleted.push_back(k); });

  auto key = kernel.tls_key_create();
  ASSERT_TRUE(key.is_ok());
  ASSERT_EQ(created.size(), 1u);
  EXPECT_EQ(created[0], *key);

  ASSERT_TRUE(kernel.tls_key_delete(*key).is_ok());
  ASSERT_EQ(deleted.size(), 1u);
  EXPECT_EQ(deleted[0], *key);

  kernel.remove_key_create_hook(create_id);
  kernel.remove_key_delete_hook(delete_id);
  auto key2 = kernel.tls_key_create();
  ASSERT_TRUE(key2.is_ok());
  EXPECT_EQ(created.size(), 1u);  // hook removed, no new notification
}

TEST_F(KernelTest, TlsKeysAreRecycledAndExhaustible) {
  Kernel& kernel = Kernel::instance();
  std::vector<TlsKey> keys;
  for (int i = 0; i < kMaxTlsSlots - kFirstUserTlsKey; ++i) {
    auto key = kernel.tls_key_create();
    ASSERT_TRUE(key.is_ok()) << "exhausted early at " << i;
    keys.push_back(*key);
  }
  auto overflow = kernel.tls_key_create();
  EXPECT_FALSE(overflow.is_ok());
  ASSERT_TRUE(kernel.tls_key_delete(keys.back()).is_ok());
  auto recycled = kernel.tls_key_create();
  EXPECT_TRUE(recycled.is_ok());
}

TEST_F(KernelTest, DeleteInvalidKeyFails) {
  EXPECT_FALSE(Kernel::instance().tls_key_delete(kInvalidTlsKey).is_ok());
  EXPECT_FALSE(Kernel::instance().tls_key_delete(kMaxTlsSlots).is_ok());
  EXPECT_FALSE(Kernel::instance().tls_key_delete(kFirstUserTlsKey).is_ok());
}

TEST_F(KernelTest, ScopedPersonaRestores) {
  Kernel& kernel = Kernel::instance();
  kernel.register_current_thread(Persona::kIos);
  sys_set_persona(Persona::kIos);
  {
    ScopedPersona as_android(Persona::kAndroid);
    EXPECT_EQ(kernel.current_thread().persona(), Persona::kAndroid);
    {
      ScopedPersona nested(Persona::kIos);
      EXPECT_EQ(kernel.current_thread().persona(), Persona::kIos);
    }
    EXPECT_EQ(kernel.current_thread().persona(), Persona::kAndroid);
  }
  EXPECT_EQ(kernel.current_thread().persona(), Persona::kIos);
}

TEST_F(KernelTest, PerPersonaErrnoIsIndependent) {
  libc::set_errno(11);
  sys_set_persona(Persona::kIos);
  EXPECT_EQ(libc::get_errno(), 0);
  libc::set_errno(35);
  sys_set_persona(Persona::kAndroid);
  EXPECT_EQ(libc::get_errno(), 11);
}

// Every trap model must execute the full syscall set correctly; only the
// entry-path cost differs (Table 3).
class TrapModelTest : public ::testing::TestWithParam<TrapModel> {
 protected:
  void SetUp() override { Kernel::instance().reset(GetParam()); }
};

TEST_P(TrapModelTest, NullAndGetTidWork) {
  if (GetParam() == TrapModel::kIpadIos) {
    Kernel::instance().register_current_thread(Persona::kIos);
  }
  EXPECT_EQ(sys_null(), 0);
  EXPECT_EQ(sys_gettid(), Kernel::instance().current_thread().tid());
}

TEST_P(TrapModelTest, OutOfRangeSyscallRejected) {
  EXPECT_LT(Kernel::instance().trap(0x7fffffff, {}), 0);
  EXPECT_LT(Kernel::instance().trap(-1, {}), 0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, TrapModelTest,
                         ::testing::Values(TrapModel::kStockAndroid,
                                           TrapModel::kCycada,
                                           TrapModel::kIpadIos),
                         [](const auto& info) {
                           switch (info.param) {
                             case TrapModel::kStockAndroid:
                               return "StockAndroid";
                             case TrapModel::kCycada: return "Cycada";
                             case TrapModel::kIpadIos: return "IpadIos";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace cycada::kernel
