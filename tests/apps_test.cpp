// Integration tests of the app layer (browser, PassMark, GCD dispatch)
// across the four system configurations of the paper's evaluation.
#include <gtest/gtest.h>

#include "dispatch/dispatch.h"
#include "glport/system_config.h"
#include "passmark/passmark.h"
#include "ios_gl/gles.h"
#include "webkit/browser.h"
#include "webkit/raster.h"

namespace cycada {
namespace {

using glport::SystemConfig;

class ConfigTest : public ::testing::TestWithParam<SystemConfig> {
 protected:
  void SetUp() override { glport::apply_system_config(GetParam()); }
};

TEST_P(ConfigTest, PortRendersAndPresents) {
  auto port = glport::make_gl_port(GetParam());
  ASSERT_TRUE(port->init(64, 64, 2).is_ok());
  port->begin_frame();
  port->clear_color(1.f, 0.f, 0.f, 1.f);
  port->clear(glcore::GL_COLOR_BUFFER_BIT);
  ASSERT_TRUE(port->present().is_ok());
  const Image screen = port->screen();
  EXPECT_EQ(screen.at(0, 0), 0xff0000ffu);
  EXPECT_EQ(screen.at(63, 63), 0xff0000ffu);
  EXPECT_EQ(port->get_error(), glcore::GL_NO_ERROR);
}

TEST_P(ConfigTest, SharedBufferLockRoundTrip) {
  auto port = glport::make_gl_port(GetParam());
  ASSERT_TRUE(port->init(32, 32, 2).is_ok());
  auto handle = port->create_shared_buffer(16, 16);
  ASSERT_TRUE(handle.is_ok());
  const glport::GLuint texture = port->gen_texture();
  ASSERT_TRUE(port->bind_buffer_to_texture(*handle, texture).is_ok());
  // Lock while texture-bound: the restriction dance must make this work on
  // every configuration.
  auto canvas = port->lock_buffer(*handle);
  ASSERT_TRUE(canvas.is_ok()) << canvas.status().to_string();
  canvas->pixels[0] = 0xff00ff00u;
  ASSERT_TRUE(port->unlock_buffer(*handle).is_ok());
  EXPECT_EQ(port->get_error(), glcore::GL_NO_ERROR);
}

TEST_P(ConfigTest, BrowserAcidScoreIs100) {
  auto port = glport::make_gl_port(GetParam());
  ASSERT_TRUE(port->init(256, 192, 2).is_ok());
  webkit::Browser browser(*port, /*jit_enabled=*/true);
  EXPECT_EQ(browser.acid_score(), 100) << glport::config_name(GetParam());
}

TEST_P(ConfigTest, BrowserRunsScriptAndRendersResults) {
  auto port = glport::make_gl_port(GetParam());
  ASSERT_TRUE(port->init(128, 128, 2).is_ok());
  const bool jit = GetParam() != SystemConfig::kCycadaIos;  // the Mach VM bug
  webkit::Browser browser(*port, jit);
  auto result = browser.run_script("var s = 0; for (var i = 1; i <= 10; i++) s += i; s;");
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(*result, 55.0);
  EXPECT_GE(browser.frames_rendered(), 1);
}

TEST_P(ConfigTest, PassMarkTestsRunCleanly) {
  glport::apply_system_config(GetParam());
  auto port = glport::make_gl_port(GetParam());
  ASSERT_TRUE(port->init(96, 96, 1).is_ok());
  passmark::PassMark passmark(*port);
  for (const auto& spec : passmark::test_specs()) {
    auto primitives = passmark.run(spec.name, 2);
    ASSERT_TRUE(primitives.is_ok())
        << spec.name << " on " << glport::config_name(GetParam()) << ": "
        << primitives.status().to_string();
    EXPECT_GT(*primitives, 0u) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigTest,
                         ::testing::Values(SystemConfig::kAndroid,
                                           SystemConfig::kCycadaAndroid,
                                           SystemConfig::kCycadaIos,
                                           SystemConfig::kIos),
                         [](const auto& info) {
                           switch (info.param) {
                             case SystemConfig::kAndroid: return "Android";
                             case SystemConfig::kCycadaAndroid:
                               return "CycadaAndroid";
                             case SystemConfig::kCycadaIos: return "CycadaIos";
                             case SystemConfig::kIos: return "Ios";
                           }
                           return "Unknown";
                         });

TEST(CrossConfigTest, BrowserPixelsIdenticalEverywhere) {
  // The paper's functional claim, strengthened: the same page renders
  // pixel-for-pixel identically on all four configurations.
  const char* page =
      "<body bg=#dbe6f0><h1 color=#101820>Cycada</h1>"
      "<div bg=#c02030 width=80 height=24></div>"
      "<p color=#203040>binary compatible graphics support for iOS apps on "
      "Android devices</p></body>";
  std::vector<Image> screens;
  for (SystemConfig config :
       {SystemConfig::kAndroid, SystemConfig::kCycadaAndroid,
        SystemConfig::kCycadaIos, SystemConfig::kIos}) {
    glport::apply_system_config(config);
    auto port = glport::make_gl_port(config);
    ASSERT_TRUE(port->init(192, 160, 2).is_ok());
    webkit::Browser browser(*port, true);
    ASSERT_TRUE(browser.load(page).is_ok());
    screens.push_back(browser.screen());
  }
  for (std::size_t i = 1; i < screens.size(); ++i) {
    EXPECT_EQ(Image::diff_count(screens[0], screens[i]), 0u) << i;
  }
  // And it matches the software reference renderer.
  glport::apply_system_config(SystemConfig::kAndroid);
}

TEST(DocumentTest, ParsesNestedMarkup) {
  auto doc = webkit::Document::parse(
      "<body bg=#000000><div bg=#ff0000 width=10 height=20>"
      "<span color=#00ff00>hi</span></div><p>text here</p></body>");
  ASSERT_TRUE(doc.is_ok());
  const auto& body = doc->body();
  EXPECT_EQ(body.tag, "body");
  ASSERT_EQ(body.children.size(), 2u);
  EXPECT_EQ(body.children[0]->tag, "div");
  EXPECT_EQ(body.children[0]->width, 10);
  EXPECT_EQ(body.children[0]->bg, 0xff0000ffu);
  EXPECT_EQ(body.children[1]->tag, "p");
}

TEST(DocumentTest, RejectsMalformedMarkup) {
  EXPECT_FALSE(webkit::Document::parse("<div>").is_ok());
  EXPECT_FALSE(webkit::Document::parse("<div></span>").is_ok());
  EXPECT_FALSE(webkit::Document::parse("<div foo>").is_ok());
}

TEST(LayoutTest, TextWrapsAtViewportWidth) {
  auto doc = webkit::Document::parse(
      "<body><p>aaaa bbbb cccc dddd eeee ffff</p></body>");
  ASSERT_TRUE(doc.is_ok());
  const auto narrow = webkit::layout(*doc, 80);
  const auto wide = webkit::layout(*doc, 600);
  // The narrow viewport needs more lines (taller content, more runs).
  EXPECT_GT(narrow.text_runs.size(), wide.text_runs.size());
  EXPECT_GT(narrow.content_height, wide.content_height);
}

TEST(LayoutTest, ExplicitHeightsRespected) {
  auto doc = webkit::Document::parse(
      "<body><div bg=#112233 height=40></div><div bg=#445566 height=8></div>"
      "</body>");
  ASSERT_TRUE(doc.is_ok());
  const auto list = webkit::layout(*doc, 100);
  ASSERT_GE(list.rects.size(), 2u);
  EXPECT_EQ(list.rects[0].rect.height, 40);
  EXPECT_EQ(list.rects[1].rect.height, 8);
  EXPECT_GE(list.rects[1].rect.y, list.rects[0].rect.y + 40);
}

TEST(RasterTest, GlyphsAreDeterministic) {
  int set_pixels = 0;
  for (int gy = 0; gy < webkit::kGlyphHeight; ++gy) {
    for (int gx = 0; gx < webkit::kGlyphWidth; ++gx) {
      EXPECT_EQ(webkit::glyph_pixel('A', gx, gy),
                webkit::glyph_pixel('A', gx, gy));
      set_pixels += webkit::glyph_pixel('A', gx, gy);
      EXPECT_FALSE(webkit::glyph_pixel(' ', gx, gy));
    }
  }
  EXPECT_GT(set_pixels, 0);
}

TEST(DispatchTest, AsyncJobsAdoptSubmitterContext) {
  glport::apply_system_config(SystemConfig::kCycadaIos);
  auto context =
      ios_gl::EAGLContext::init_with_api(ios_gl::EAGLRenderingAPI::kOpenGLES2);
  ASSERT_TRUE(context.is_ok());
  ASSERT_TRUE(ios_gl::EAGLContext::set_current_context(*context));

  dispatch::DispatchQueue queue("com.cycada.render");
  std::atomic<bool> adopted{false};
  std::atomic<int> gl_error{-1};
  queue.sync([&] {
    // The job sees the submitter's EAGL context (GCD semantics, paper §7).
    adopted.store(ios_gl::EAGLContext::current_context().get() ==
                  context->get());
    ios_gl::glClearColor(0.f, 1.f, 0.f, 1.f);
    gl_error.store(static_cast<int>(ios_gl::glGetError()));
  });
  EXPECT_TRUE(adopted.load());
  EXPECT_EQ(gl_error.load(), static_cast<int>(glcore::GL_NO_ERROR));

  // Many async jobs across a concurrent queue all complete.
  dispatch::DispatchQueue pool("com.cycada.pool",
                               dispatch::DispatchQueue::Kind::kConcurrent, 3);
  std::atomic<int> done{0};
  for (int i = 0; i < 24; ++i) {
    pool.async([&] { done.fetch_add(1); });
  }
  pool.drain();
  EXPECT_EQ(done.load(), 24);
  EXPECT_EQ(pool.jobs_completed(), 24u);
  ios_gl::EAGLContext::clear_current_context();
}

}  // namespace
}  // namespace cycada
