#include "iosurface/iosurface.h"

#include <gtest/gtest.h>

#include "android_gl/egl.h"
#include "android_gl/vendor.h"
#include "core/diplomat.h"
#include "gpu/device.h"
#include "kernel/kernel.h"

namespace cycada::iosurface {
namespace {

class IOSurfaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel::Kernel::instance().reset();
    gpu::GpuDevice::instance().reset();
    gmem::GrallocAllocator::instance().reset();
    linker::Linker::instance().reset();
    LinuxCoreSurface::instance().reset();
    core::DiplomatRegistry::instance().reset();
    // Android-side setup (the wrapper, GL calls) happens in the Android
    // persona, as it would when reached through diplomats. The IOSurface C
    // API itself is persona-agnostic (its diplomats switch as needed).
    kernel::Kernel::instance().register_current_thread(
        kernel::Persona::kAndroid);
  }

  // Sets up an MC replica wrapper with a current GLES2 context, as the EAGL
  // bridge would.
  android_gl::UiWrapper* make_wrapper() {
    android_gl::AndroidEgl* egl = android_gl::open_android_egl();
    if (egl == nullptr || egl->eglInitialize() != android_gl::EGL_TRUE) {
      return nullptr;
    }
    const int id = egl->eglReInitializeMC();
    if (id <= 0) return nullptr;
    android_gl::UiWrapper* wrapper = egl->connection_by_id(id)->ui_wrapper;
    if (!wrapper->initialize(2, 8, 8).is_ok()) return nullptr;
    return wrapper;
  }
};

TEST_F(IOSurfaceTest, CreateAllocatesGraphicBufferBacking) {
  IOSurfaceRef surface = IOSurfaceCreate({.width = 16, .height = 8});
  ASSERT_NE(surface, nullptr);
  EXPECT_EQ(IOSurfaceGetWidth(surface), 16);
  EXPECT_EQ(IOSurfaceGetHeight(surface), 8);
  EXPECT_NE(surface->backing(), nullptr);
  // gralloc pads rows to 16 pixels: 16 px * 4 bytes.
  EXPECT_EQ(IOSurfaceGetBytesPerRow(surface), 64u);
  // The creation ran through an indirect diplomat.
  auto snapshot = core::DiplomatRegistry::instance().snapshot();
  bool found = false;
  for (const auto& entry : snapshot) {
    if (entry.name == "IOSurfaceCreate") {
      found = true;
      EXPECT_EQ(entry.pattern, core::DiplomatPattern::kIndirect);
      EXPECT_EQ(entry.calls, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(IOSurfaceTest, CreateRejectsBadDimensions) {
  EXPECT_EQ(IOSurfaceCreate({.width = 0, .height = 8}), nullptr);
  EXPECT_EQ(IOSurfaceCreate({.width = 8, .height = -1}), nullptr);
}

TEST_F(IOSurfaceTest, LookupFromIdSharesTheSurface) {
  IOSurfaceRef surface = IOSurfaceCreate({.width = 4, .height = 4});
  ASSERT_NE(surface, nullptr);
  IOSurfaceRef other = IOSurfaceLookupFromID(IOSurfaceGetID(surface));
  EXPECT_EQ(surface.get(), other.get());
  EXPECT_EQ(IOSurfaceLookupFromID(9999), nullptr);
}

TEST_F(IOSurfaceTest, SurfaceDiesWhenLastRefDrops) {
  IOSurfaceId id = 0;
  {
    IOSurfaceRef surface = IOSurfaceCreate({.width = 4, .height = 4});
    ASSERT_NE(surface, nullptr);
    id = IOSurfaceGetID(surface);
    EXPECT_EQ(LinuxCoreSurface::instance().live_surfaces(), 1u);
  }
  EXPECT_EQ(IOSurfaceLookupFromID(id), nullptr);
  EXPECT_EQ(LinuxCoreSurface::instance().live_surfaces(), 0u);
}

TEST_F(IOSurfaceTest, LockUnlockWithoutTextureIsSimple) {
  IOSurfaceRef surface = IOSurfaceCreate({.width = 4, .height = 4});
  ASSERT_NE(surface, nullptr);
  EXPECT_EQ(IOSurfaceGetBaseAddress(surface), nullptr);  // not locked yet
  ASSERT_TRUE(IOSurfaceLock(surface).is_ok());
  void* base = IOSurfaceGetBaseAddress(surface);
  ASSERT_NE(base, nullptr);
  // CPU drawing into the locked surface.
  static_cast<std::uint32_t*>(base)[0] = 0xff0000ffu;
  EXPECT_FALSE(IOSurfaceLock(surface).is_ok());  // double lock
  ASSERT_TRUE(IOSurfaceUnlock(surface).is_ok());
  EXPECT_FALSE(IOSurfaceUnlock(surface).is_ok());  // double unlock
  EXPECT_EQ(surface->backing()->pixels32()[0], 0xff0000ffu);
}

TEST_F(IOSurfaceTest, TextureBoundSurfaceCannotLockDirectly) {
  // Sanity-check the underlying Android restriction that motivates the
  // multi-diplomat dance: an EGLImage-associated buffer refuses CPU locks.
  android_gl::UiWrapper* wrapper = make_wrapper();
  ASSERT_NE(wrapper, nullptr);
  IOSurfaceRef surface = IOSurfaceCreate({.width = 4, .height = 4});
  ASSERT_NE(surface, nullptr);

  glcore::GlesEngine& gl = *wrapper->engine();
  glcore::GLuint texture = 0;
  gl.glGenTextures(1, &texture);
  ASSERT_TRUE(LinuxCoreSurface::instance()
                  .bind_gles_texture(surface, wrapper, texture)
                  .is_ok());
  EXPECT_EQ(surface->backing()->egl_image_refs(), 1);
  EXPECT_FALSE(surface->backing()->lock(gmem::kUsageCpuRead).is_ok());
}

TEST_F(IOSurfaceTest, LockDanceDisassociatesAndReassociates) {
  android_gl::UiWrapper* wrapper = make_wrapper();
  ASSERT_NE(wrapper, nullptr);
  IOSurfaceRef surface = IOSurfaceCreate({.width = 4, .height = 4});
  ASSERT_NE(surface, nullptr);

  glcore::GlesEngine& gl = *wrapper->engine();
  glcore::GLuint texture = 0;
  gl.glGenTextures(1, &texture);
  ASSERT_TRUE(LinuxCoreSurface::instance()
                  .bind_gles_texture(surface, wrapper, texture)
                  .is_ok());

  // The multi diplomat makes the lock succeed despite the association.
  ASSERT_TRUE(IOSurfaceLock(surface).is_ok());
  EXPECT_EQ(surface->backing()->egl_image_refs(), 0);
  auto* pixels = static_cast<std::uint32_t*>(IOSurfaceGetBaseAddress(surface));
  ASSERT_NE(pixels, nullptr);
  pixels[0] = 0xff00ff00u;  // 2D API drawing on the CPU
  ASSERT_TRUE(IOSurfaceUnlock(surface).is_ok());

  // Re-associated: the buffer is GLES texture storage again...
  EXPECT_EQ(surface->backing()->egl_image_refs(), 1);
  EXPECT_EQ(surface->bound_texture(), texture);
  // ...and the CPU write is visible through the zero-copy alias.
  EXPECT_EQ(surface->backing()->pixels32()[0], 0xff00ff00u);
}

TEST_F(IOSurfaceTest, DeleteTexturesMultiDiplomatSeversAssociation) {
  android_gl::UiWrapper* wrapper = make_wrapper();
  ASSERT_NE(wrapper, nullptr);
  IOSurfaceRef surface = IOSurfaceCreate({.width = 4, .height = 4});
  glcore::GlesEngine& gl = *wrapper->engine();
  glcore::GLuint texture = 0;
  gl.glGenTextures(1, &texture);
  ASSERT_TRUE(LinuxCoreSurface::instance()
                  .bind_gles_texture(surface, wrapper, texture)
                  .is_ok());
  EXPECT_EQ(LinuxCoreSurface::instance()
                .surface_for_texture(wrapper, texture)
                .get(),
            surface.get());

  // glDeleteTextures (the §6.1 interposition): engine releases the EGLImage
  // ref; the kernel module forgets the association.
  gl.glDeleteTextures(1, &texture);
  ASSERT_TRUE(
      LinuxCoreSurface::instance().unbind_gles_texture(surface).is_ok());
  EXPECT_EQ(surface->backing()->egl_image_refs(), 0);
  EXPECT_TRUE(IOSurfaceLock(surface).is_ok());
  EXPECT_TRUE(IOSurfaceUnlock(surface).is_ok());
}

TEST_F(IOSurfaceTest, BindLockedSurfaceFails) {
  android_gl::UiWrapper* wrapper = make_wrapper();
  ASSERT_NE(wrapper, nullptr);
  IOSurfaceRef surface = IOSurfaceCreate({.width = 4, .height = 4});
  ASSERT_TRUE(IOSurfaceLock(surface).is_ok());
  glcore::GLuint texture = 0;
  wrapper->engine()->glGenTextures(1, &texture);
  EXPECT_FALSE(LinuxCoreSurface::instance()
                   .bind_gles_texture(surface, wrapper, texture)
                   .is_ok());
}

}  // namespace
}  // namespace cycada::iosurface
