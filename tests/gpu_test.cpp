#include "gpu/device.h"

#include <gtest/gtest.h>

#include <vector>

namespace cycada::gpu {
namespace {

class GpuTest : public ::testing::Test {
 protected:
  void SetUp() override { GpuDevice::instance().reset(); }
  GpuDevice& dev() { return GpuDevice::instance(); }
};

ShadedVertex vtx(float x, float y, float z, Color c, Vec2 uv = {}) {
  ShadedVertex v;
  v.clip_pos = {x, y, z, 1.f};
  v.color = c;
  v.texcoord = uv;
  return v;
}

TEST_F(GpuTest, CommandsAreQueuedUntilFlush) {
  const auto target = dev().create_target(16, 16, false);
  dev().submit_clear(target, std::nullopt, true, {1.f, 0.f, 0.f, 1.f}, false,
                     1.f);
  EXPECT_EQ(dev().pending_commands(), 1u);
  dev().flush();
  EXPECT_EQ(dev().pending_commands(), 0u);
  EXPECT_EQ(dev().stats().clear_commands, 1u);
}

TEST_F(GpuTest, ClearFillsTarget) {
  const auto target = dev().create_target(8, 8, false);
  dev().submit_clear(target, std::nullopt, true, {0.f, 1.f, 0.f, 1.f}, false,
                     1.f);
  std::vector<std::uint32_t> pixels(64);
  ASSERT_TRUE(dev().read_pixels(target, 0, 0, 8, 8, pixels.data(), 8).is_ok());
  for (std::uint32_t pixel : pixels) EXPECT_EQ(pixel, 0xff00ff00u);
}

TEST_F(GpuTest, ScissoredClearOnlyTouchesRect) {
  const auto target = dev().create_target(8, 8, false);
  dev().submit_clear(target, std::nullopt, true, {0.f, 0.f, 0.f, 1.f}, false, 1.f);
  dev().submit_clear(target, ScissorRect{2, 2, 3, 3}, true,
                     {1.f, 1.f, 1.f, 1.f}, false, 1.f);
  std::vector<std::uint32_t> pixels(64);
  ASSERT_TRUE(dev().read_pixels(target, 0, 0, 8, 8, pixels.data(), 8).is_ok());
  EXPECT_EQ(pixels[0], 0xff000000u);
  EXPECT_EQ(pixels[2 * 8 + 2], 0xffffffffu);
  EXPECT_EQ(pixels[4 * 8 + 4], 0xffffffffu);
  EXPECT_EQ(pixels[5 * 8 + 5], 0xff000000u);
}

TEST_F(GpuTest, FullScreenQuadCoversEveryPixel) {
  const auto target = dev().create_target(16, 16, false);
  const Color red{1.f, 0.f, 0.f, 1.f};
  std::vector<ShadedVertex> quad = {
      vtx(-1, -1, 0, red), vtx(1, -1, 0, red), vtx(1, 1, 0, red),
      vtx(-1, -1, 0, red), vtx(1, 1, 0, red),  vtx(-1, 1, 0, red),
  };
  RasterState state;
  dev().submit_draw(target, state, PrimitiveKind::kTriangles, quad);
  std::vector<std::uint32_t> pixels(256);
  ASSERT_TRUE(
      dev().read_pixels(target, 0, 0, 16, 16, pixels.data(), 16).is_ok());
  int red_pixels = 0;
  for (std::uint32_t pixel : pixels) red_pixels += pixel == 0xff0000ffu;
  EXPECT_EQ(red_pixels, 256);
  EXPECT_EQ(dev().stats().fragments_shaded, 256u);
}

TEST_F(GpuTest, DepthTestRejectsFarFragments) {
  const auto target = dev().create_target(8, 8, true);
  RasterState state;
  state.depth_test = true;
  const Color near_color{0.f, 1.f, 0.f, 1.f};
  const Color far_color{1.f, 0.f, 0.f, 1.f};
  std::vector<ShadedVertex> near_quad = {
      vtx(-1, -1, -0.5f, near_color), vtx(1, -1, -0.5f, near_color),
      vtx(1, 1, -0.5f, near_color),   vtx(-1, -1, -0.5f, near_color),
      vtx(1, 1, -0.5f, near_color),   vtx(-1, 1, -0.5f, near_color)};
  std::vector<ShadedVertex> far_quad = {
      vtx(-1, -1, 0.5f, far_color), vtx(1, -1, 0.5f, far_color),
      vtx(1, 1, 0.5f, far_color),   vtx(-1, -1, 0.5f, far_color),
      vtx(1, 1, 0.5f, far_color),   vtx(-1, 1, 0.5f, far_color)};
  dev().submit_draw(target, state, PrimitiveKind::kTriangles, near_quad);
  dev().submit_draw(target, state, PrimitiveKind::kTriangles, far_quad);
  std::vector<std::uint32_t> pixels(64);
  ASSERT_TRUE(dev().read_pixels(target, 0, 0, 8, 8, pixels.data(), 8).is_ok());
  for (std::uint32_t pixel : pixels) EXPECT_EQ(pixel, 0xff00ff00u);
}

TEST_F(GpuTest, AlphaBlendingMixesColors) {
  const auto target = dev().create_target(4, 4, false);
  dev().submit_clear(target, std::nullopt, true, {0.f, 0.f, 0.f, 1.f}, false, 1.f);
  RasterState state;
  state.blend = true;
  state.blend_src = BlendFactor::kSrcAlpha;
  state.blend_dst = BlendFactor::kOneMinusSrcAlpha;
  const Color half_white{1.f, 1.f, 1.f, 0.5f};
  std::vector<ShadedVertex> quad = {
      vtx(-1, -1, 0, half_white), vtx(1, -1, 0, half_white),
      vtx(1, 1, 0, half_white),   vtx(-1, -1, 0, half_white),
      vtx(1, 1, 0, half_white),   vtx(-1, 1, 0, half_white)};
  dev().submit_draw(target, state, PrimitiveKind::kTriangles, quad);
  std::vector<std::uint32_t> pixels(16);
  ASSERT_TRUE(dev().read_pixels(target, 0, 0, 4, 4, pixels.data(), 4).is_ok());
  const int r = pixels[0] & 0xff;
  EXPECT_NEAR(r, 128, 2);
}

TEST_F(GpuTest, TexturedQuadSamplesTexture) {
  const auto target = dev().create_target(8, 8, false);
  const auto texture = dev().create_texture();
  ASSERT_TRUE(dev().define_texture(texture, 2, 1).is_ok());
  // Left texel blue, right texel green.
  const std::uint32_t texels[2] = {0xffff0000u, 0xff00ff00u};
  ASSERT_TRUE(dev().upload_texture(texture, 0, 0, 2, 1, texels, 2).is_ok());

  RasterState state;
  state.texture = texture;
  state.tex_env = TexEnv::kReplace;
  const Color white{1.f, 1.f, 1.f, 1.f};
  std::vector<ShadedVertex> quad = {
      vtx(-1, -1, 0, white, {0.f, 0.f}), vtx(1, -1, 0, white, {1.f, 0.f}),
      vtx(1, 1, 0, white, {1.f, 1.f}),   vtx(-1, -1, 0, white, {0.f, 0.f}),
      vtx(1, 1, 0, white, {1.f, 1.f}),   vtx(-1, 1, 0, white, {0.f, 1.f})};
  dev().submit_draw(target, state, PrimitiveKind::kTriangles, quad);
  std::vector<std::uint32_t> pixels(64);
  ASSERT_TRUE(dev().read_pixels(target, 0, 0, 8, 8, pixels.data(), 8).is_ok());
  EXPECT_EQ(pixels[0], 0xffff0000u);       // left half samples texel 0
  EXPECT_EQ(pixels[7], 0xff00ff00u);       // right half samples texel 1
}

TEST_F(GpuTest, ExternalTargetRendersIntoCallerMemory) {
  std::vector<std::uint32_t> memory(16 * 16, 0u);
  const auto target =
      dev().create_target_external(memory.data(), 16, 16, 16, false);
  dev().submit_clear(target, std::nullopt, true, {1.f, 1.f, 0.f, 1.f}, false,
                     1.f);
  dev().flush();
  EXPECT_EQ(memory[0], 0xff00ffffu);  // yellow in RGBA little-endian packing
  EXPECT_EQ(memory[255], 0xff00ffffu);
}

TEST_F(GpuTest, FenceSignalsAfterExecution) {
  const auto target = dev().create_target(4, 4, false);
  dev().submit_clear(target, std::nullopt, true, {0, 0, 0, 1}, false, 1.f);
  const FenceHandle fence = dev().submit_fence();
  EXPECT_FALSE(dev().fence_signaled(fence));
  dev().flush();
  EXPECT_TRUE(dev().fence_signaled(fence));
  EXPECT_EQ(dev().stats().fences_signaled, 1u);
}

TEST_F(GpuTest, WaitFenceExecutesPendingWork) {
  const auto target = dev().create_target(4, 4, false);
  dev().submit_clear(target, std::nullopt, true, {1, 1, 1, 1}, false, 1.f);
  const FenceHandle fence = dev().submit_fence();
  dev().wait_fence(fence);
  EXPECT_TRUE(dev().fence_signaled(fence));
  EXPECT_EQ(dev().pending_commands(), 0u);
}

TEST_F(GpuTest, ReadPixelsValidatesBounds) {
  const auto target = dev().create_target(4, 4, false);
  std::vector<std::uint32_t> out(16);
  EXPECT_FALSE(dev().read_pixels(target, 2, 2, 4, 4, out.data(), 4).is_ok());
  EXPECT_FALSE(dev().read_pixels(9999, 0, 0, 1, 1, out.data(), 1).is_ok());
}

TEST_F(GpuTest, UploadTextureValidatesRegion) {
  const auto texture = dev().create_texture();
  ASSERT_TRUE(dev().define_texture(texture, 4, 4).is_ok());
  std::uint32_t texel = 0;
  EXPECT_FALSE(dev().upload_texture(texture, 3, 3, 2, 2, &texel, 2).is_ok());
  EXPECT_FALSE(dev().upload_texture(9999, 0, 0, 1, 1, &texel, 1).is_ok());
}

TEST_F(GpuTest, DestroyedResourcesAreInvalid) {
  const auto texture = dev().create_texture();
  const auto target = dev().create_target(2, 2, false);
  EXPECT_TRUE(dev().texture_valid(texture));
  EXPECT_TRUE(dev().target_valid(target));
  ASSERT_TRUE(dev().destroy_texture(texture).is_ok());
  ASSERT_TRUE(dev().destroy_target(target).is_ok());
  EXPECT_FALSE(dev().texture_valid(texture));
  EXPECT_FALSE(dev().target_valid(target));
  EXPECT_FALSE(dev().destroy_texture(texture).is_ok());
}

TEST_F(GpuTest, PerspectiveDivideHalvesFarGeometry) {
  // A triangle at w=2 lands at half the NDC extent of one at w=1.
  const auto target = dev().create_target(64, 64, false);
  dev().submit_clear(target, std::nullopt, true, {0, 0, 0, 1}, false, 1.f);
  const Color c{1.f, 0.f, 0.f, 1.f};
  ShadedVertex a = vtx(-2, -2, 0, c);
  ShadedVertex b = vtx(2, -2, 0, c);
  ShadedVertex d = vtx(0, 2, 0, c);
  for (ShadedVertex* v : {&a, &b, &d}) v->clip_pos.w = 2.f;
  dev().submit_draw(target, {}, PrimitiveKind::kTriangles, {a, b, d});
  dev().flush();
  const auto stats = dev().stats();
  // NDC extent [-1,1] fully covered would be ~2048 fragments for a triangle
  // spanning the target; w=2 halves each axis: roughly the full triangle.
  EXPECT_GT(stats.fragments_shaded, 1000u);
  EXPECT_LT(stats.fragments_shaded, 3000u);
}

// Property sweep: clears of any size/scissor never write outside the rect.
class ClearSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ClearSweepTest, ScissorIsRespected) {
  GpuDevice::instance().reset();
  auto& dev = GpuDevice::instance();
  const auto [x, y, w, h] = GetParam();
  const int size = 16;
  const auto target = dev.create_target(size, size, false);
  dev.submit_clear(target, std::nullopt, true, {0, 0, 0, 1}, false, 1.f);
  dev.submit_clear(target, ScissorRect{x, y, w, h}, true, {1, 1, 1, 1}, false,
                   1.f);
  std::vector<std::uint32_t> pixels(size * size);
  ASSERT_TRUE(
      dev.read_pixels(target, 0, 0, size, size, pixels.data(), size).is_ok());
  for (int py = 0; py < size; ++py) {
    for (int px = 0; px < size; ++px) {
      const bool inside = px >= x && px < x + w && py >= y && py < y + h;
      EXPECT_EQ(pixels[py * size + px], inside ? 0xffffffffu : 0xff000000u)
          << px << "," << py;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rects, ClearSweepTest,
    ::testing::Values(std::make_tuple(0, 0, 16, 16),
                      std::make_tuple(0, 0, 1, 1),
                      std::make_tuple(15, 15, 1, 1),
                      std::make_tuple(4, 8, 8, 4),
                      std::make_tuple(8, 0, 8, 16),
                      std::make_tuple(0, 0, 0, 0)));

}  // namespace
}  // namespace cycada::gpu
