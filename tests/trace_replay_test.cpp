// Trace capture/replay (src/trace/cyt.h, src/core/replay.h) and the trace
// miner (analyze::check_trace, docs/TRACING.md): byte-identical round
// trips, rejection of truncated/corrupt/wrong-version files with errors
// that name the defect, capture→replay count fidelity, every seeded mining
// rule, and the committed golden PassMark corpus.
#include "core/replay.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "core/batch.h"
#include "core/diplomat.h"
#include "glport/system_config.h"
#include "trace/cyt.h"
#include "util/status.h"

namespace cycada::core {
namespace {

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + "cyt_" + name + ".cyt";
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string bytes;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

trace::CytRecord make_def(std::uint32_t id, const char* name,
                          DiplomatPattern pattern, bool batchable) {
  trace::CytRecord def = trace::cyt_zero_record();
  def.type = static_cast<std::uint8_t>(trace::CytRecordType::kDef);
  def.kind = static_cast<std::uint8_t>(pattern);
  def.flags = batchable ? trace::kCytDefFlagBatchable : 0;
  def.id = id;
  std::strncpy(def.name, name, trace::kCytNameChars - 1);
  return def;
}

trace::CytRecord make_event(std::uint32_t id, trace::CytEventKind kind,
                            std::uint8_t flags = 0, std::uint32_t aux = 0,
                            std::uint32_t tid = 0) {
  trace::CytRecord event = trace::cyt_zero_record();
  event.type = static_cast<std::uint8_t>(trace::CytRecordType::kEvent);
  event.kind = static_cast<std::uint8_t>(kind);
  event.flags = flags;
  event.id = id;
  event.tid = tid;
  event.aux = aux;
  return event;
}

// Flags of a recorded batch-eligible plain call.
constexpr std::uint8_t kEligible =
    trace::kCytFlagVoidReturn | trace::kCytFlagScalarArgs;

Status write_trace(const std::string& path,
                   const std::vector<trace::CytRecord>& records) {
  trace::CytHeader header{};
  return trace::write_cyt(path, header, records);
}

// Captures `workload` into `path` through the real recorder.
void capture(const std::string& path, const std::function<void()>& workload) {
  trace::TraceRecorder& recorder = trace::TraceRecorder::instance();
  ASSERT_TRUE(recorder.start(path).is_ok());
  workload();
  ASSERT_TRUE(recorder.stop().is_ok());
  ASSERT_EQ(recorder.dropped(), 0u);
}

std::map<std::string, std::uint64_t> registry_call_counts() {
  std::map<std::string, std::uint64_t> counts;
  for (const DiplomatSnapshot& s : DiplomatRegistry::instance().snapshot()) {
    if (s.calls != 0) counts[s.name] = s.calls;
  }
  return counts;
}

std::map<std::string, std::uint64_t> delta(
    const std::map<std::string, std::uint64_t>& before,
    const std::map<std::string, std::uint64_t>& after) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, count] : after) {
    auto it = before.find(name);
    const std::uint64_t base = it == before.end() ? 0 : it->second;
    if (count != base) out[name] = count - base;
  }
  return out;
}

class TraceReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  }
};

// --- Format round trips ------------------------------------------------------

TEST_F(TraceReplayTest, RecorderFileRoundTripsByteIdentical) {
  const std::string path = tmp_path("roundtrip");
  DiplomatEntry& enable =
      DiplomatRegistry::instance().entry("glEnable", DiplomatPattern::kDirect);
  capture(path, [&] {
    {
      BatchScope scope;
      for (int i = 0; i < 3; ++i) ASSERT_TRUE(batch_record(enable, {}, [] {}));
    }
    diplomat_call(enable, {}, [] {});
  });

  auto parsed = trace::read_cyt(path);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_FALSE(parsed->records.empty());

  const std::string rewritten = tmp_path("roundtrip2");
  ASSERT_TRUE(trace::write_cyt(rewritten, parsed->header, parsed->records,
                               parsed->dropped)
                  .is_ok());
  EXPECT_EQ(read_file(path), read_file(rewritten));
}

TEST_F(TraceReplayTest, TruncatedFilesAreRejectedWithClearErrors) {
  const std::string path = tmp_path("trunc_src");
  ASSERT_TRUE(write_trace(path, {make_def(1, "fn", DiplomatPattern::kDirect,
                                          false),
                                 make_event(1, trace::CytEventKind::kCall)})
                  .is_ok());
  const std::string bytes = read_file(path);

  const std::string trunc = tmp_path("trunc");
  // Shorter than header + footer: structurally impossible.
  write_file(trunc, bytes.substr(0, 40));
  auto r1 = trace::read_cyt(trunc);
  ASSERT_FALSE(r1.is_ok());
  EXPECT_NE(r1.status().message().find("truncated"), std::string::npos)
      << r1.status().to_string();

  // Cut mid-record: the payload is no longer a whole number of records.
  write_file(trunc, bytes.substr(0, bytes.size() - 100));
  auto r2 = trace::read_cyt(trunc);
  ASSERT_FALSE(r2.is_ok());
  EXPECT_NE(r2.status().message().find("truncated"), std::string::npos)
      << r2.status().to_string();

  // Whole records but the footer is gone (crashed writer).
  write_file(trunc, bytes.substr(0, bytes.size() - sizeof(trace::CytFooter)));
  auto r3 = trace::read_cyt(trunc);
  ASSERT_FALSE(r3.is_ok());
  EXPECT_NE(r3.status().message().find("truncated"), std::string::npos)
      << r3.status().to_string();
}

TEST_F(TraceReplayTest, CorruptRecordFailsTheChecksum) {
  const std::string path = tmp_path("corrupt");
  ASSERT_TRUE(write_trace(path, {make_def(1, "fn", DiplomatPattern::kDirect,
                                          false),
                                 make_event(1, trace::CytEventKind::kCall)})
                  .is_ok());
  std::string bytes = read_file(path);
  // Flip one byte inside the first record's name field.
  bytes[sizeof(trace::CytHeader) + 100] ^= 0x5a;
  write_file(path, bytes);
  auto parsed = trace::read_cyt(path);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("checksum"), std::string::npos)
      << parsed.status().to_string();
}

TEST_F(TraceReplayTest, WrongVersionAndMagicAreRejected) {
  const std::string path = tmp_path("version");
  ASSERT_TRUE(write_trace(path, {make_def(1, "fn", DiplomatPattern::kDirect,
                                          false)})
                  .is_ok());
  std::string bytes = read_file(path);

  trace::CytHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.version = trace::kCytVersion + 7;
  std::string versioned = bytes;
  std::memcpy(versioned.data(), &header, sizeof(header));
  write_file(path, versioned);
  auto wrong_version = trace::read_cyt(path);
  ASSERT_FALSE(wrong_version.is_ok());
  EXPECT_NE(wrong_version.status().message().find("version"),
            std::string::npos)
      << wrong_version.status().to_string();

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  write_file(path, bad_magic);
  auto not_cyt = trace::read_cyt(path);
  ASSERT_FALSE(not_cyt.is_ok());
  EXPECT_NE(not_cyt.status().message().find("magic"), std::string::npos)
      << not_cyt.status().to_string();

  EXPECT_FALSE(trace::read_cyt(path + ".does-not-exist").is_ok());
}

// --- Capture → replay fidelity ----------------------------------------------

TEST_F(TraceReplayTest, ReplayReproducesCapturedCallCountsExactly) {
  const std::string path = tmp_path("fidelity");
  DiplomatEntry& enable =
      DiplomatRegistry::instance().entry("glEnable", DiplomatPattern::kDirect);
  DiplomatEntry& skip = DiplomatRegistry::instance().entry(
      "glGetString", DiplomatPattern::kDataDependent);
  DiplomatEntry& plain = DiplomatRegistry::instance().entry(
      "trace_replay_test.plain", DiplomatPattern::kDirect);
  capture(path, [&] {
    {
      BatchScope scope;
      for (int i = 0; i < 5; ++i) ASSERT_TRUE(batch_record(enable, {}, [] {}));
    }
    for (int i = 0; i < 2; ++i) diplomat_call(plain, {}, [] {});
    diplomat_skip(skip);
  });

  auto parsed = trace::read_cyt(path);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const std::map<std::string, std::uint64_t> per_pass =
      trace_call_counts(*parsed);
  EXPECT_EQ(per_pass.at("glEnable"), 5u);
  EXPECT_EQ(per_pass.at("trace_replay_test.plain"), 2u);
  EXPECT_EQ(per_pass.at("glGetString"), 1u);

  ReplayOptions options;
  options.threads = 2;
  options.iterations = 3;
  const std::map<std::string, std::uint64_t> before = registry_call_counts();
  auto stats = replay_trace(*parsed, options);
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  const std::map<std::string, std::uint64_t> replayed =
      delta(before, registry_call_counts());

  for (const auto& [name, count] : per_pass) {
    EXPECT_EQ(replayed.at(name), count * 6) << name;
  }
  EXPECT_EQ(replayed.size(), per_pass.size());

  // Crossings per call must track the recorded stream within 5%: the five
  // batched calls share one crossing, the skip crosses nothing.
  const double expected =
      static_cast<double>(trace_expected_crossings(*parsed) * 6) /
      static_cast<double>(stats->calls);
  EXPECT_NEAR(stats->crossings_per_call(), expected, expected * 0.05);
  EXPECT_EQ(stats->skips, 6u);
  EXPECT_EQ(stats->batched, 30u);
}

TEST_F(TraceReplayTest, ReplayRejectsDeflessIdsAndBadOptions) {
  const std::string path = tmp_path("defless");
  ASSERT_TRUE(
      write_trace(path, {make_event(7, trace::CytEventKind::kCall)}).is_ok());
  auto parsed = trace::read_cyt(path);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_FALSE(replay_trace(*parsed, {}).is_ok());

  ReplayOptions bad;
  bad.threads = 0;
  EXPECT_FALSE(replay_trace(trace::ParsedTrace{}, bad).is_ok());
}

// --- Trace mining ------------------------------------------------------------

TEST_F(TraceReplayTest, MinerFlagsEverySeededViolation) {
  const std::string path = tmp_path("violations");
  std::vector<trace::CytRecord> records = {
      // kSkip on a direct diplomat: only data-dependent entries may skip.
      make_def(1, "mine.direct", DiplomatPattern::kDirect, false),
      make_event(1, trace::CytEventKind::kSkip),
      // Batched evidence on a non-batchable def.
      make_event(1, trace::CytEventKind::kBatchedCall),
      // A coalesced multi crossing on a non-multi def.
      make_event(1, trace::CytEventKind::kMulti),
      // An invoked kUnimplemented diplomat.
      make_def(2, "mine.unimpl", DiplomatPattern::kUnimplemented, false),
      make_event(2, trace::CytEventKind::kCall),
      // An event with no def record at all.
      make_event(99, trace::CytEventKind::kCall),
      // A flush that crossed personas carrying nothing.
      make_def(3, "mine.opener", DiplomatPattern::kDirect, true),
      make_event(3, trace::CytEventKind::kBatchFlush, 0, /*aux=*/0),
      // A Table 2 name recorded with the wrong pattern.
      make_def(4, "glClear", DiplomatPattern::kIndirect, false),
      make_event(4, trace::CytEventKind::kCall),
  };
  ASSERT_TRUE(write_trace(path, records).is_ok());
  auto parsed = trace::read_cyt(path);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();

  analyze::Report report;
  const analyze::TraceAudit audit = analyze::check_trace(*parsed, report);
  EXPECT_EQ(audit.events, 7u);
  EXPECT_TRUE(report.has_rule("trace.illegal-skip"));
  EXPECT_TRUE(report.has_rule("trace.illegal-batched-call"));
  EXPECT_TRUE(report.has_rule("trace.pattern-contradiction"));
  EXPECT_TRUE(report.has_rule("trace.unimplemented-invoked"));
  EXPECT_TRUE(report.has_rule("trace.def-missing"));
  EXPECT_TRUE(report.has_rule("trace.empty-flush"));
  EXPECT_TRUE(report.has_rule("trace.classification-mismatch"));
}

TEST_F(TraceReplayTest, MinerFindsUnbatchedRunsAndHonorsSuppression) {
  const std::string path = tmp_path("candidates");
  std::vector<trace::CytRecord> records = {
      make_def(1, "mine.run", DiplomatPattern::kDirect, true),
      make_def(2, "mine.already_batched", DiplomatPattern::kDirect, true),
  };
  // A run of five batch-eligible plain calls: a candidate.
  for (int i = 0; i < 5; ++i) {
    records.push_back(make_event(1, trace::CytEventKind::kCall, kEligible));
  }
  // This def DID batch elsewhere in the trace, so its run is not reported.
  records.push_back(
      make_event(2, trace::CytEventKind::kBatchedCall, kEligible));
  records.push_back(make_event(2, trace::CytEventKind::kBatchFlush, 0, 1));
  for (int i = 0; i < 5; ++i) {
    records.push_back(make_event(2, trace::CytEventKind::kCall, kEligible));
  }
  ASSERT_TRUE(write_trace(path, records).is_ok());
  auto parsed = trace::read_cyt(path);
  ASSERT_TRUE(parsed.is_ok());

  analyze::Report report;
  const analyze::TraceAudit audit = analyze::check_trace(*parsed, report);
  EXPECT_TRUE(report.clean()) << report.findings().size();
  ASSERT_EQ(audit.candidates.size(), 1u);
  EXPECT_EQ(audit.candidates[0].name, "mine.run");
  EXPECT_EQ(audit.candidates[0].longest_run, 5u);
  EXPECT_TRUE(audit.candidates[0].classifier_batchable);

  // Below the run-length floor nothing is reported.
  analyze::TraceAuditOptions strict;
  strict.min_run_length = 6;
  analyze::Report quiet_report;
  EXPECT_TRUE(
      analyze::check_trace(*parsed, quiet_report, strict).candidates.empty());
}

TEST_F(TraceReplayTest, ReplayDivergenceComparesCountMaps) {
  analyze::Report report;
  analyze::check_replay_divergence({{"a", 4}, {"b", 2}}, {{"a", 4}, {"b", 2}},
                                   report);
  EXPECT_TRUE(report.clean());

  analyze::check_replay_divergence({{"a", 4}, {"gone", 1}},
                                   {{"a", 3}, {"extra", 2}}, report);
  EXPECT_EQ(report.by_checker("trace").size(), 3u);
  EXPECT_TRUE(report.has_rule("trace.replay-divergence"));
}

// --- The committed golden corpus --------------------------------------------

TEST_F(TraceReplayTest, GoldenPassmarkTraceMinesCleanAndReplaysFaithfully) {
  const std::string path =
      std::string(CYCADA_SOURCE_DIR) + "/tests/data/golden_passmark.cyt";
  auto parsed = trace::read_cyt(path);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->dropped, 0u);
  EXPECT_GT(parsed->records.size(), 50u);

  // The miner must find no contract violations and at least one actionable
  // batchability candidate (the generator plants an un-batched run).
  analyze::Report report;
  const analyze::TraceAudit audit = analyze::check_trace(*parsed, report);
  EXPECT_TRUE(report.clean()) << report.findings().front().rule;
  EXPECT_GE(audit.candidates.size(), 1u);

  // Max-rate replay reproduces the live per-diplomat counts exactly and
  // crossings-per-call within 5% (the ISSUE acceptance bar).
  ReplayOptions options;
  options.threads = 1;
  options.iterations = 1;
  const std::map<std::string, std::uint64_t> before = registry_call_counts();
  auto stats = replay_trace(*parsed, options);
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  const std::map<std::string, std::uint64_t> replayed =
      delta(before, registry_call_counts());
  const std::map<std::string, std::uint64_t> expected =
      trace_call_counts(*parsed);
  EXPECT_EQ(replayed, expected);

  const double expected_cpc =
      static_cast<double>(trace_expected_crossings(*parsed)) /
      static_cast<double>(stats->calls);
  EXPECT_NEAR(stats->crossings_per_call(), expected_cpc, expected_cpc * 0.05);
}

}  // namespace
}  // namespace cycada::core
