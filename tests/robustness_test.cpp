// Property sweeps, concurrency stress and failure injection across the
// stack — the "keep widening coverage" suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analyze/analyze.h"
#include "android_gl/egl.h"
#include "android_gl/vendor.h"
#include "core/batch.h"
#include "core/diplomat.h"
#include "core/impersonation.h"
#include "core/replay.h"
#include "glcore/engine.h"
#include "glport/system_config.h"
#include "gpu/device.h"
#include "gpu/pipeline.h"
#include "ios_gl/eagl.h"
#include "ios_gl/gles.h"
#include "iosurface/iosurface.h"
#include "kernel/kernel.h"
#include "kernel/libc.h"
#include "passmark/passmark.h"
#include "linker/linker.h"
#include "trace/metrics.h"
#include "util/clock.h"
#include "util/epoch.h"
#include "util/faultpoint.h"
#include "util/lock_order.h"
#include "util/retry.h"
#include "util/watchdog.h"
#include "util/rng.h"
#include "webkit/browser.h"

namespace cycada {
namespace {

// --- Rasterizer property: random draws never escape the scissor -------------

class ScissorContainmentTest : public ::testing::TestWithParam<int> {};

TEST_P(ScissorContainmentTest, RandomTrianglesStayInsideScissor) {
  gpu::GpuDevice::instance().reset();
  auto& dev = gpu::GpuDevice::instance();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const int size = 32;
  const auto target = dev.create_target(size, size, true);
  dev.submit_clear(target, std::nullopt, true, {0, 0, 0, 1}, true, 1.f);

  gpu::ScissorRect scissor{static_cast<int>(rng.next_below(16)),
                           static_cast<int>(rng.next_below(16)),
                           static_cast<int>(rng.next_below(14)) + 2,
                           static_cast<int>(rng.next_below(14)) + 2};
  gpu::RasterState state;
  state.scissor = scissor;
  state.blend = rng.next_below(2) == 0;
  state.blend_src = gpu::BlendFactor::kSrcAlpha;
  state.blend_dst = gpu::BlendFactor::kOneMinusSrcAlpha;
  state.depth_test = rng.next_below(2) == 0;

  for (int i = 0; i < 20; ++i) {
    std::vector<gpu::ShadedVertex> tri(3);
    for (auto& v : tri) {
      v.clip_pos = {rng.next_float(-2.f, 2.f), rng.next_float(-2.f, 2.f),
                    rng.next_float(-1.f, 1.f), 1.f};
      v.color = {1.f, 1.f, 1.f, rng.next_float(0.2f, 1.f)};
    }
    dev.submit_draw(target, state, gpu::PrimitiveKind::kTriangles, tri);
  }
  dev.flush();

  std::vector<std::uint32_t> pixels(size * size);
  ASSERT_TRUE(
      dev.read_pixels(target, 0, 0, size, size, pixels.data(), size).is_ok());
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      const bool inside = x >= scissor.x && x < scissor.x + scissor.width &&
                          y >= scissor.y && y < scissor.y + scissor.height;
      if (!inside) {
        EXPECT_EQ(pixels[y * size + x], 0xff000000u)
            << "pixel outside scissor touched at " << x << "," << y;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScissorContainmentTest,
                         ::testing::Range(0, 12));

// --- Blend factor sweep vs. CPU-computed expectations ------------------------

struct BlendCase {
  gpu::BlendFactor src;
  gpu::BlendFactor dst;
};

class BlendSweepTest : public ::testing::TestWithParam<BlendCase> {};

TEST_P(BlendSweepTest, MatchesClosedFormBlend) {
  gpu::GpuDevice::instance().reset();
  auto& dev = gpu::GpuDevice::instance();
  const auto target = dev.create_target(4, 4, false);
  const Color dst_color{0.25f, 0.5f, 0.75f, 0.5f};
  const Color src_color{0.8f, 0.4f, 0.2f, 0.6f};
  dev.submit_clear(target, std::nullopt, true, dst_color, false, 1.f);

  gpu::RasterState state;
  state.blend = true;
  state.blend_src = GetParam().src;
  state.blend_dst = GetParam().dst;
  std::vector<gpu::ShadedVertex> quad(6);
  const float pts[6][2] = {{-1, -1}, {1, -1}, {1, 1}, {-1, -1}, {1, 1}, {-1, 1}};
  for (int i = 0; i < 6; ++i) {
    quad[i].clip_pos = {pts[i][0], pts[i][1], 0.f, 1.f};
    quad[i].color = src_color;
  }
  dev.submit_draw(target, state, gpu::PrimitiveKind::kTriangles, quad);
  std::vector<std::uint32_t> pixels(16);
  ASSERT_TRUE(dev.read_pixels(target, 0, 0, 4, 4, pixels.data(), 4).is_ok());

  // Closed-form expectation (must quantize dst through the framebuffer
  // the same way the device does).
  const Color stored_dst = unpack_rgba8888(pack_rgba8888(dst_color));
  const auto factor = [&](gpu::BlendFactor f, float s, float /*d*/) {
    switch (f) {
      case gpu::BlendFactor::kZero: return 0.f;
      case gpu::BlendFactor::kOne: return 1.f;
      case gpu::BlendFactor::kSrcAlpha: return src_color.a;
      case gpu::BlendFactor::kOneMinusSrcAlpha: return 1.f - src_color.a;
      case gpu::BlendFactor::kDstAlpha: return stored_dst.a;
      case gpu::BlendFactor::kOneMinusDstAlpha: return 1.f - stored_dst.a;
      case gpu::BlendFactor::kSrcColor: return s;
      case gpu::BlendFactor::kOneMinusSrcColor: return 1.f - s;
    }
    return 1.f;
  };
  const auto expect_channel = [&](float s, float d) {
    return clamp01(s * factor(GetParam().src, s, 0.f) +
                   d * factor(GetParam().dst, s, 0.f));
  };
  const Color expected{expect_channel(src_color.r, stored_dst.r),
                       expect_channel(src_color.g, stored_dst.g),
                       expect_channel(src_color.b, stored_dst.b),
                       expect_channel(src_color.a, stored_dst.a)};
  const Color actual = unpack_rgba8888(pixels[5]);
  EXPECT_NEAR(actual.r, expected.r, 2.f / 255.f);
  EXPECT_NEAR(actual.g, expected.g, 2.f / 255.f);
  EXPECT_NEAR(actual.b, expected.b, 2.f / 255.f);
  EXPECT_NEAR(actual.a, expected.a, 2.f / 255.f);
}

INSTANTIATE_TEST_SUITE_P(
    Factors, BlendSweepTest,
    ::testing::Values(
        BlendCase{gpu::BlendFactor::kOne, gpu::BlendFactor::kZero},
        BlendCase{gpu::BlendFactor::kSrcAlpha,
                  gpu::BlendFactor::kOneMinusSrcAlpha},
        BlendCase{gpu::BlendFactor::kOne, gpu::BlendFactor::kOne},
        BlendCase{gpu::BlendFactor::kDstAlpha, gpu::BlendFactor::kZero},
        BlendCase{gpu::BlendFactor::kSrcColor,
                  gpu::BlendFactor::kOneMinusSrcColor},
        BlendCase{gpu::BlendFactor::kZero,
                  gpu::BlendFactor::kOneMinusDstAlpha}));

// --- Topology equivalence: strip/fan/list produce identical pixels -----------

TEST(TopologyTest, StripFanAndListAgree) {
  kernel::Kernel::instance().reset();
  gpu::GpuDevice::instance().reset();
  glcore::GlesEngine engine({});
  const auto render = [&](glcore::GLenum mode, const float* verts, int count) {
    const auto target = gpu::GpuDevice::instance().create_target(16, 16, false);
    const auto ctx = engine.create_context(1);
    EXPECT_TRUE(engine.make_current(ctx, target).is_ok());
    engine.glViewport(0, 0, 16, 16);
    engine.glClearColor(0, 0, 0, 1);
    engine.glClear(glcore::GL_COLOR_BUFFER_BIT);
    engine.glColor4f(1.f, 0.f, 1.f, 1.f);
    engine.glEnableClientState(glcore::GL_VERTEX_ARRAY);
    engine.glVertexPointer(2, glcore::GL_FLOAT, 0, verts);
    engine.glDrawArrays(mode, 0, count);
    std::vector<std::uint32_t> pixels(256);
    engine.glReadPixels(0, 0, 16, 16, glcore::GL_RGBA,
                        glcore::GL_UNSIGNED_BYTE, pixels.data());
    (void)engine.make_current(glcore::kNoContext, gpu::kNoHandle);
    (void)engine.destroy_context(ctx);
    return pixels;
  };

  // The same quad three ways.
  const float list[] = {-0.5f, -0.5f, 0.5f, -0.5f, 0.5f, 0.5f,
                        -0.5f, -0.5f, 0.5f, 0.5f,  -0.5f, 0.5f};
  const float strip[] = {-0.5f, -0.5f, 0.5f, -0.5f, -0.5f, 0.5f, 0.5f, 0.5f};
  const float fan[] = {-0.5f, -0.5f, 0.5f, -0.5f, 0.5f, 0.5f, -0.5f, 0.5f};
  const auto a = render(glcore::GL_TRIANGLES, list, 6);
  const auto b = render(glcore::GL_TRIANGLE_STRIP, strip, 4);
  const auto c = render(glcore::GL_TRIANGLE_FAN, fan, 4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

// --- Kernel concurrency stress ------------------------------------------------

TEST(KernelStressTest, ConcurrentSyscallsAndTlsStayConsistent) {
  kernel::Kernel::instance().reset();
  kernel::Kernel::instance().register_current_thread(
      kernel::Persona::kAndroid);
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      auto& kernel = kernel::Kernel::instance();
      kernel.register_current_thread(t % 2 == 0 ? kernel::Persona::kAndroid
                                                : kernel::Persona::kIos);
      const kernel::TlsKey key = kernel::libc::pthread_key_create();
      if (key == kernel::kInvalidTlsKey) {
        failures.fetch_add(1);
        return;
      }
      std::intptr_t mine = t + 1;
      for (int i = 0; i < kRounds; ++i) {
        if (kernel::sys_null() != 0) failures.fetch_add(1);
        kernel.tls_set(key, reinterpret_cast<void*>(mine));
        if (kernel.tls_get(key) != reinterpret_cast<void*>(mine)) {
          failures.fetch_add(1);
        }
        const kernel::Persona persona =
            i % 2 == 0 ? kernel::Persona::kIos : kernel::Persona::kAndroid;
        if (kernel::sys_set_persona(persona) != 0) failures.fetch_add(1);
      }
      kernel::libc::pthread_key_delete(key);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- Linker stress: many replicas, concurrent loads ---------------------------

TEST(LinkerStressTest, ManyReplicasStayIsolated) {
  kernel::Kernel::instance().reset();
  gpu::GpuDevice::instance().reset();
  linker::Linker::instance().reset();
  android_gl::register_android_graphics_libraries();
  auto& linker = linker::Linker::instance();

  std::vector<linker::Handle> replicas;
  std::set<void*> globals;
  for (int i = 0; i < 40; ++i) {
    auto replica = linker.dlforce(android_gl::kNvRmLib);
    ASSERT_TRUE(replica.is_ok()) << i;
    void* global = linker.dlsym(*replica, "nv_global");
    ASSERT_NE(global, nullptr);
    EXPECT_TRUE(globals.insert(global).second) << "duplicate global at " << i;
    replicas.push_back(std::move(replica.value()));
  }
  EXPECT_EQ(linker.live_copy_count(android_gl::kNvRmLib), 40);
  for (auto& replica : replicas) {
    EXPECT_TRUE(linker.dlclose(std::move(replica)).is_ok());
  }
  EXPECT_EQ(linker.live_copy_count(android_gl::kNvRmLib), 0);
}

TEST(LinkerStressTest, ConcurrentDlopenSharesOneCopy) {
  kernel::Kernel::instance().reset();
  linker::Linker::instance().reset();
  android_gl::register_android_graphics_libraries();
  auto& linker = linker::Linker::instance();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<void*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &linker, &seen] {
      for (int i = 0; i < 50; ++i) {
        auto handle = linker.dlopen(android_gl::kNvOsLib);
        if (!handle.is_ok()) return;
        seen[t] = linker.dlsym(*handle, "nv_global");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
    EXPECT_NE(seen[t], nullptr);
  }
}

// --- Diplomat statistics under concurrency ------------------------------------

TEST(DiplomatStressTest, ConcurrentCallsCountExactly) {
  kernel::Kernel::instance().reset();
  core::DiplomatRegistry::instance().reset();
  auto& entry = core::DiplomatRegistry::instance().entry(
      "stress.fn", core::DiplomatPattern::kDirect);
  constexpr int kThreads = 8;
  constexpr int kCalls = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&entry] {
      kernel::Kernel::instance().register_current_thread(
          kernel::Persona::kIos);
      for (int i = 0; i < kCalls; ++i) {
        core::diplomat_call(entry, {}, [] {});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(entry.calls.load(), static_cast<std::uint64_t>(kThreads) * kCalls);
}

// --- End-to-end: glDeleteTextures severs the IOSurface association ------------

TEST(MultiDiplomatTest, DeleteTexturesSeversIoSurfaceBinding) {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  auto context = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 32, 32);
  ASSERT_TRUE(context.is_ok());
  ios_gl::EAGLContext::set_current_context(*context);

  auto surface = iosurface::IOSurfaceCreate({.width = 8, .height = 8});
  ASSERT_NE(surface, nullptr);
  glcore::GLuint texture = 0;
  ios_gl::glGenTextures(1, &texture);
  ASSERT_TRUE((*context)->tex_image_io_surface(surface, texture).is_ok());
  EXPECT_EQ(surface->backing()->egl_image_refs(), 1);
  EXPECT_EQ(surface->bound_texture(), texture);

  // The §6.1 multi diplomat: delete also removes the kernel-side
  // association so the surface is CPU-lockable again without the dance.
  ios_gl::glDeleteTextures(1, &texture);
  EXPECT_EQ(surface->bound_texture(), 0u);
  EXPECT_EQ(surface->backing()->egl_image_refs(), 0);
  EXPECT_TRUE(iosurface::IOSurfaceLock(surface).is_ok());
  EXPECT_TRUE(iosurface::IOSurfaceUnlock(surface).is_ok());
  ios_gl::EAGLContext::clear_current_context();
}

// --- Failure injection ----------------------------------------------------------

TEST(FailureInjectionTest, BadInputsFailGracefully) {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);

  // EAGL: present without drawable storage.
  auto context = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 16, 16);
  ASSERT_TRUE(context.is_ok());
  ios_gl::EAGLContext::set_current_context(*context);
  EXPECT_EQ((*context)->present_renderbuffer(123).code(),
            StatusCode::kFailedPrecondition);
  // EAGL: zero-size layer.
  EXPECT_FALSE((*context)
                   ->renderbuffer_storage_from_drawable(
                       1, ios_gl::CAEAGLLayer{0, 16})
                   .is_ok());
  // IOSurface: absurd dimensions.
  EXPECT_EQ(iosurface::IOSurfaceCreate({.width = 1 << 20, .height = 4}),
            nullptr);
  // gralloc: zero usage flags.
  EXPECT_FALSE(gmem::GrallocAllocator::instance()
                   .allocate(4, 4, PixelFormat::kRgba8888, 0)
                   .is_ok());
  // Engine: unknown enum surfaces as GL_INVALID_ENUM, not a crash.
  ios_gl::glEnable(0x9999);
  EXPECT_EQ(ios_gl::glGetError(), glcore::GL_INVALID_ENUM);
  ios_gl::EAGLContext::clear_current_context();
}

TEST(FailureInjectionTest, BrowserRejectsMalformedMarkupGracefully) {
  glport::apply_system_config(glport::SystemConfig::kAndroid);
  auto port = glport::make_gl_port(glport::SystemConfig::kAndroid);
  ASSERT_TRUE(port->init(64, 64, 2).is_ok());
  webkit::Browser browser(*port, true);
  EXPECT_FALSE(browser.load("<body><div>no close").is_ok());
  // The browser is still usable afterwards.
  EXPECT_TRUE(browser.load("<body bg=#102030><p>ok</p></body>").is_ok());
  EXPECT_EQ(browser.screen().at(40, 60), webkit::parse_color("#102030"));
}

// --- Determinism: identical screens across repeat runs -------------------------

TEST(DeterminismTest, PassMarkFramesAreReproducible) {
  const auto run_once = [] {
    glport::apply_system_config(glport::SystemConfig::kCycadaIos);
    auto port = glport::make_gl_port(glport::SystemConfig::kCycadaIos);
    EXPECT_TRUE(port->init(64, 64, 1).is_ok());
    passmark::PassMark passmark(*port);
    EXPECT_TRUE(passmark.run("Transparent Vectors", 3).is_ok());
    return port->screen();
  };
  const Image first = run_once();
  const Image second = run_once();
  EXPECT_EQ(Image::diff_count(first, second), 0u);
}


// --- WebKit render thread (paper §7: "the iOS WebKit library spawns a
// rendering thread ... used by other threads related to WebKit") -------------

TEST(ThreadedRenderingTest, RenderThreadMatchesInlineRendering) {
  const char* page =
      "<body bg=#203040><h1 color=#f0f0f0>threads</h1>"
      "<p color=#90c0f0>painted on a dedicated render thread</p></body>";

  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  auto inline_port = glport::make_gl_port(glport::SystemConfig::kCycadaIos);
  ASSERT_TRUE(inline_port->init(128, 128, 2).is_ok());
  webkit::Browser inline_browser(*inline_port, false);
  ASSERT_TRUE(inline_browser.load(page).is_ok());
  const Image inline_screen = inline_browser.screen();

  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  auto threaded_port = glport::make_gl_port(glport::SystemConfig::kCycadaIos);
  ASSERT_TRUE(threaded_port->init(128, 128, 2).is_ok());
  webkit::Browser threaded_browser(*threaded_port, false);
  threaded_browser.enable_threaded_rendering();
  EXPECT_TRUE(threaded_browser.threaded_rendering());
  ASSERT_TRUE(threaded_browser.load(page).is_ok());
  ASSERT_TRUE(threaded_browser.render_frame().is_ok());
  const Image threaded_screen = threaded_browser.screen();

  EXPECT_EQ(Image::diff_count(inline_screen, threaded_screen), 0u);
}

// --- Native-iOS IOSurface semantics: no dance needed -------------------------

TEST(NativeIosTest, LockSucceedsWhileTextureBoundWithoutDance) {
  glport::apply_system_config(glport::SystemConfig::kIos);
  auto context = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 16, 16);
  ASSERT_TRUE(context.is_ok());
  ios_gl::EAGLContext::set_current_context(*context);

  auto surface = iosurface::IOSurfaceCreate({.width = 8, .height = 8});
  ASSERT_NE(surface, nullptr);
  glcore::GLuint texture = 0;
  ios_gl::glGenTextures(1, &texture);
  ASSERT_TRUE((*context)->tex_image_io_surface(surface, texture).is_ok());
  // On real iOS the buffer stays GLES-associated through the lock: Apple
  // hardware permits concurrent CPU mapping (no §6.2 dance).
  const int refs_before = surface->backing()->egl_image_refs();
  EXPECT_GE(refs_before, 1);
  ASSERT_TRUE(iosurface::IOSurfaceLock(surface).is_ok());
  EXPECT_EQ(surface->backing()->egl_image_refs(), refs_before);
  auto* pixels = static_cast<std::uint32_t*>(
      iosurface::IOSurfaceGetBaseAddress(surface));
  ASSERT_NE(pixels, nullptr);
  pixels[0] = 0xff112233u;
  ASSERT_TRUE(iosurface::IOSurfaceUnlock(surface).is_ok());
  EXPECT_EQ(surface->backing()->pixels32()[0], 0xff112233u);
  ios_gl::EAGLContext::clear_current_context();
}

// --- Fault points: trigger semantics (docs/ROBUSTNESS.md) --------------------

TEST(RobustnessFaultPointTest, OnceFiresExactlyOnThedNthTraversal) {
  util::FaultPoint& point =
      util::FaultRegistry::instance().point("test.sem.once");
  point.disarm();
  point.reset_stats();
  point.arm_once(3);
  std::vector<int> fired_at;
  for (int i = 1; i <= 10; ++i) {
    if (point.should_fail()) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, std::vector<int>({3}));
  EXPECT_EQ(point.hits(), 10u);
  EXPECT_EQ(point.fires(), 1u);
  point.disarm();
}

TEST(RobustnessFaultPointTest, EveryNthFiresPeriodically) {
  util::FaultPoint& point =
      util::FaultRegistry::instance().point("test.sem.every");
  point.disarm();
  point.reset_stats();
  point.arm_every(4);
  int fires = 0;
  for (int i = 0; i < 12; ++i) {
    if (point.should_fail()) ++fires;
  }
  EXPECT_EQ(fires, 3);  // traversals 4, 8, 12
  EXPECT_EQ(point.fires(), 3u);
  point.disarm();
  // Disarmed again: pure pass-through, and hits stop accumulating.
  const std::uint64_t hits = point.hits();
  EXPECT_FALSE(point.should_fail());
  EXPECT_EQ(point.hits(), hits);
}

TEST(RobustnessFaultPointTest, ProbabilityIsReproduciblePerSeed) {
  util::FaultPoint& point =
      util::FaultRegistry::instance().point("test.sem.prob");
  auto run = [&point](std::uint64_t seed) {
    point.disarm();
    point.reset_stats();
    point.arm_probability(300000, seed);  // 30%
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(point.should_fail());
    point.disarm();
    return fires;
  };
  const std::vector<bool> first = run(42);
  const std::vector<bool> second = run(42);
  EXPECT_EQ(first, second);  // same seed, same fire sequence: replayable
  const int fires = static_cast<int>(std::count(first.begin(), first.end(),
                                                true));
  EXPECT_GT(fires, 20);   // ~60 expected; wide slack, deterministic anyway
  EXPECT_LT(fires, 120);
  EXPECT_NE(first, run(43));  // a different seed gives a different sequence
}

TEST(RobustnessFaultPointTest, SuppressionScopeMasksArmedPointsOnThisThread) {
  util::FaultPoint& point =
      util::FaultRegistry::instance().point("test.sem.suppress");
  point.disarm();
  point.reset_stats();
  point.arm_every(1);
  {
    util::FaultSuppressionScope no_faults;
    EXPECT_FALSE(point.should_fail());
    // Suppressed traversals never happened: no hit, no fire.
    EXPECT_EQ(point.hits(), 0u);
    EXPECT_EQ(point.fires(), 0u);
    // Other threads are unaffected: the scope is thread-local.
    std::thread other([&point] { EXPECT_TRUE(point.should_fail()); });
    other.join();
  }
  EXPECT_TRUE(point.should_fail());
  point.disarm();
}

TEST(RobustnessFaultConfigTest, ConfigureParsesTheCycadaFaultGrammar) {
  util::FaultRegistry& registry = util::FaultRegistry::instance();
  EXPECT_TRUE(registry.configure(
      "test.cfg.a=once,test.cfg.b=every:4,test.cfg.c=prob:500000:7"));
  EXPECT_EQ(registry.point("test.cfg.a").trigger(),
            util::FaultTrigger::kOnce);
  EXPECT_EQ(registry.point("test.cfg.b").trigger(),
            util::FaultTrigger::kEveryNth);
  EXPECT_EQ(registry.point("test.cfg.c").trigger(),
            util::FaultTrigger::kProbability);
  EXPECT_TRUE(registry.configure("test.cfg.a=off"));
  EXPECT_EQ(registry.point("test.cfg.a").trigger(),
            util::FaultTrigger::kDisarmed);
  // A malformed entry is reported, but well-formed entries still apply.
  EXPECT_FALSE(registry.configure("test.cfg.b=bogus,test.cfg.d=once:2"));
  EXPECT_EQ(registry.point("test.cfg.d").trigger(), util::FaultTrigger::kOnce);
  EXPECT_FALSE(registry.configure("no-equals-sign"));
  registry.disarm_all();
  for (const util::FaultPointInfo& info : registry.snapshot()) {
    EXPECT_EQ(info.trigger, util::FaultTrigger::kDisarmed) << info.name;
  }
}

TEST(RobustnessFaultConfigTest, AllAppliesOneTriggerToTheWholeCatalog) {
  util::FaultRegistry& registry = util::FaultRegistry::instance();
  EXPECT_TRUE(registry.configure("all=prob:1000:42"));
  for (const std::string& name : util::FaultRegistry::catalog()) {
    EXPECT_EQ(registry.point(name).trigger(), util::FaultTrigger::kProbability)
        << name;
  }
  EXPECT_TRUE(registry.configure("all=off"));
  for (const std::string& name : util::FaultRegistry::catalog()) {
    EXPECT_EQ(registry.point(name).trigger(), util::FaultTrigger::kDisarmed)
        << name;
  }
  // A malformed trigger on the pseudo-name is one error, not nine.
  EXPECT_FALSE(registry.configure("all=bogus"));
  registry.disarm_all();
}

TEST(RobustnessFaultPointTest, InjectedIOSurfaceLockFaultFailsGracefully) {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  auto surface = iosurface::IOSurfaceCreate({.width = 8, .height = 8});
  ASSERT_NE(surface, nullptr);

  util::FaultPoint& lock_fault =
      util::FaultRegistry::instance().point("iosurface.lock");
  lock_fault.disarm();
  lock_fault.arm_once(1);
  // The injected failure surfaces as a clean Status, not a crash, and the
  // surface stays usable: the very next lock succeeds.
  EXPECT_FALSE(iosurface::IOSurfaceLock(surface).is_ok());
  EXPECT_TRUE(iosurface::IOSurfaceLock(surface).is_ok());
  lock_fault.disarm();

  util::FaultPoint& unlock_fault =
      util::FaultRegistry::instance().point("iosurface.unlock");
  unlock_fault.disarm();
  unlock_fault.arm_once(1);
  EXPECT_FALSE(iosurface::IOSurfaceUnlock(surface).is_ok());
  unlock_fault.disarm();
  // The failed unlock did not corrupt lock state: the retry drains it.
  EXPECT_TRUE(iosurface::IOSurfaceUnlock(surface).is_ok());
}

TEST(RobustnessFaultPointTest, InjectedImpersonationFaultLeavesThreadUsable) {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  std::atomic<kernel::Tid> target{kernel::kInvalidTid};
  std::atomic<bool> stop{false};
  std::thread helper([&] {
    kernel::ThreadState& state =
        kernel::Kernel::instance().register_current_thread(
            kernel::Persona::kIos);
    target.store(state.tid(), std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (target.load(std::memory_order_acquire) == kernel::kInvalidTid) {
    std::this_thread::yield();
  }

  util::FaultPoint& fault =
      util::FaultRegistry::instance().point("dispatch.impersonate");
  fault.disarm();
  fault.arm_once(1);
  {
    // The injected failure declines the impersonation instead of migrating
    // TLS halfway: the guard reports inactive and its destructor is a no-op.
    core::ThreadImpersonation failed(target.load());
    EXPECT_FALSE(failed.active());
  }
  fault.disarm();
  {
    core::ThreadImpersonation ok(target.load());
    EXPECT_TRUE(ok.active());
  }
  stop.store(true, std::memory_order_release);
  helper.join();
}

TEST(RobustnessRetryTest, RetriesUntilSuccessThenGivesUp) {
  int calls = 0;
  Status status = util::retry_with_backoff(5, [&calls]() -> Status {
    ++calls;
    return calls < 3 ? Status::internal("transient") : Status::ok();
  });
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(calls, 3);

  calls = 0;
  status = util::retry_with_backoff(2, [&calls]() -> Status {
    ++calls;
    return Status::internal("persistent");
  });
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(calls, 2);
}

// --- Epoch reclaimer: bounded retirement --------------------------------------

TEST(RobustnessEpochTest, RetiredCountStaysBoundedOverManyCycles) {
  util::EpochReclaimer& epoch = util::EpochReclaimer::instance();
  (void)epoch.try_reclaim();
  const std::uint64_t reclaimed_before = epoch.reclaimed_total();
  std::size_t peak = 0;
  bool shrank = false;
  std::size_t previous = epoch.retired_count();
  for (int i = 0; i < 2000; ++i) {
    epoch.retire(new int(i));
    const std::size_t now = epoch.retired_count();
    peak = std::max(peak, now);
    shrank |= now < previous;  // the count must be non-monotonic: it drains
    previous = now;
  }
  (void)epoch.try_reclaim();
  // Auto-reclaim at the threshold keeps the backlog bounded regardless of
  // how many snapshots are republished — the "bounded memory" acceptance
  // criterion for the retired-table path.
  EXPECT_LE(peak, 2 * 64u);
  EXPECT_TRUE(shrank);
  EXPECT_GE(epoch.reclaimed_total() - reclaimed_before, 1900u);
  EXPECT_LE(epoch.retired_count(), 64u);
}

class RobustnessChurnLib : public linker::LibraryInstance {
 public:
  void* symbol(std::string_view) override { return nullptr; }
};

TEST(RobustnessEpochTest, SnapshotChurnStaysBoundedOverAThousandRepublishes) {
  util::EpochReclaimer& epoch = util::EpochReclaimer::instance();
  (void)epoch.try_reclaim();
  std::size_t peak = 0;

  // 1000 diplomat registrations: each copy-and-publish retires the
  // superseded DispatchTable, which before this PR accumulated forever.
  core::DiplomatRegistry& registry = core::DiplomatRegistry::instance();
  for (int i = 0; i < 1000; ++i) {
    (void)registry.entry("robustness.churn." + std::to_string(i),
                         core::DiplomatPattern::kDirect);
    peak = std::max(peak, epoch.retired_count());
  }

  // 500 dlopen/dlclose cycles: each load and each unload republishes the
  // LinkerView and retires the old one.
  linker::Linker& linker = linker::Linker::instance();
  ASSERT_TRUE(linker
                  .register_image({"librobustness_churn.so", {}, [](auto&) {
                                     return std::make_unique<
                                         RobustnessChurnLib>();
                                   }})
                  .is_ok());
  for (int i = 0; i < 500; ++i) {
    auto handle = linker.dlopen("librobustness_churn.so");
    ASSERT_TRUE(handle.is_ok());
    ASSERT_TRUE(linker.dlclose(std::move(*handle)).is_ok());
    peak = std::max(peak, epoch.retired_count());
  }

  (void)epoch.try_reclaim();
  // Bounded and non-monotonic: the backlog never exceeds a small multiple
  // of the auto-reclaim threshold and drains at the end.
  EXPECT_LE(peak, 2 * 64u);
  EXPECT_LE(epoch.retired_count(), 64u);
}

TEST(RobustnessEpochTest, PinnedReaderBlocksReclaimUntilReleased) {
  util::EpochReclaimer& epoch = util::EpochReclaimer::instance();
  (void)epoch.try_reclaim();
  ASSERT_EQ(epoch.retired_count(), 0u);

  std::atomic<int> stage{0};
  int* observed = new int(7);
  std::thread reader([&stage, observed] {
    util::EpochReclaimer::Guard guard;
    stage.store(1, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) != 2) {
      std::this_thread::yield();
    }
    // Still pinned: the object retired after we pinned must be alive.
    EXPECT_EQ(*observed, 7);
    stage.store(3, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) != 4) {
      std::this_thread::yield();
    }
  });
  while (stage.load(std::memory_order_acquire) != 1) {
    std::this_thread::yield();
  }
  epoch.retire(observed);
  EXPECT_EQ(epoch.try_reclaim(), 0u);  // reader pinned before retirement
  EXPECT_EQ(epoch.retired_count(), 1u);
  stage.store(2, std::memory_order_release);
  while (stage.load(std::memory_order_acquire) != 3) {
    std::this_thread::yield();
  }
  stage.store(4, std::memory_order_release);
  reader.join();
  EXPECT_EQ(epoch.try_reclaim(), 1u);  // unpinned: the backlog drains
  EXPECT_EQ(epoch.retired_count(), 0u);
}

TEST(RobustnessEpochTest, CachedPinHoldsFloorUntilReleased) {
  // The outermost Guard leaves its pin *published* on exit (the cached-pin
  // fast path that keeps steady-state dispatch probes fence-free). The cost
  // of that caching is deliberate and bounded: an idle thread's cached pin
  // holds the reclamation floor only until release_cached_pin().
  util::EpochReclaimer& epoch = util::EpochReclaimer::instance();
  (void)epoch.try_reclaim();
  ASSERT_EQ(epoch.retired_count(), 0u);

  std::atomic<int> stage{0};
  std::thread idler([&stage] {
    { util::EpochReclaimer::Guard guard; }  // exits; the pin stays cached
    stage.store(1, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) != 2) {
      std::this_thread::yield();
    }
    util::EpochReclaimer::instance().release_cached_pin();
    stage.store(3, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) != 4) {
      std::this_thread::yield();
    }
  });
  while (stage.load(std::memory_order_acquire) != 1) {
    std::this_thread::yield();
  }
  // No guard is live anywhere, but the idler's cached pin still floors the
  // epoch: the retirement that follows must not drain.
  epoch.retire(new int(1));
  EXPECT_EQ(epoch.try_reclaim(), 0u);
  EXPECT_EQ(epoch.retired_count(), 1u);
  stage.store(2, std::memory_order_release);
  while (stage.load(std::memory_order_acquire) != 3) {
    std::this_thread::yield();
  }
  // Released (thread still alive): the backlog drains without a join.
  EXPECT_EQ(epoch.try_reclaim(), 1u);
  EXPECT_EQ(epoch.retired_count(), 0u);
  stage.store(4, std::memory_order_release);
  idler.join();
}

// --- Replica pool: warm reuse, LRU eviction, live cap ------------------------

TEST(RobustnessReplicaPoolTest, WarmReuseLruEvictionAndLiveCap) {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  android_gl::AndroidEgl* egl = android_gl::open_android_egl();
  ASSERT_NE(egl, nullptr);
  ASSERT_EQ(egl->eglInitialize(), android_gl::EGL_TRUE);
  egl->set_replica_pool_limits(/*max_live=*/2, /*max_warm=*/1);

  const int first = egl->eglReInitializeMC();
  const int second = egl->eglReInitializeMC();
  ASSERT_GT(first, 0);
  ASSERT_GT(second, 0);
  EXPECT_EQ(egl->live_replica_count(), 2);

  // At the live cap, minting refuses gracefully instead of growing.
  EXPECT_EQ(egl->eglReInitializeMC(), 0);
  EXPECT_EQ(egl->eglGetError(), android_gl::EGL_BAD_ALLOC);
  EXPECT_EQ(egl->live_replica_count(), 2);

  // A released replica parks in the warm pool...
  EXPECT_EQ(egl->eglReleaseMC(first), android_gl::EGL_TRUE);
  EXPECT_EQ(egl->live_replica_count(), 1);
  EXPECT_EQ(egl->warm_pool_size(), 1);

  // ...and the next mint reuses it instead of running dlforce again.
  const int third = egl->eglReInitializeMC();
  EXPECT_GT(third, 0);
  EXPECT_EQ(egl->warm_pool_size(), 0);
  EXPECT_EQ(egl->live_replica_count(), 2);

  // Releasing beyond the warm cap evicts the oldest parked replica (LRU):
  // the pool size stays at the cap, never above it.
  EXPECT_EQ(egl->eglReleaseMC(second), android_gl::EGL_TRUE);
  EXPECT_EQ(egl->eglReleaseMC(third), android_gl::EGL_TRUE);
  EXPECT_EQ(egl->live_replica_count(), 0);
  EXPECT_EQ(egl->warm_pool_size(), 1);

  // Unknown and already-released ids are explicit errors, not corruption.
  EXPECT_EQ(egl->eglReleaseMC(9999), android_gl::EGL_FALSE);
  EXPECT_EQ(egl->eglGetError(), android_gl::EGL_BAD_PARAMETER);
  EXPECT_EQ(egl->eglReleaseMC(third), android_gl::EGL_FALSE);

  // Shrinking the pool limit drains the overflow immediately.
  egl->set_replica_pool_limits(0, 0);
  EXPECT_EQ(egl->warm_pool_size(), 0);
  egl->set_replica_pool_limits(0, 2);  // restore the defaults for other tests
}

// --- Degraded mode: persistent faults end in a working shared context --------

TEST(RobustnessDegradedModeTest, PersistentDlforceFaultDegradesButRenders) {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  // Scope the contract evidence to this workload (the registry is
  // process-lifetime and other suites leave their own tallies behind).
  core::DiplomatRegistry::instance().clear_stats();
  util::FaultRegistry& faults = util::FaultRegistry::instance();
  faults.point("linker.dlforce").reset_stats();
  faults.point("linker.dlforce").arm_every(1);  // every replica mint fails
  {
    auto first = ios_gl::EAGLContext::init_with_api(
        ios_gl::EAGLRenderingAPI::kOpenGLES2, 24, 24);
    auto second = ios_gl::EAGLContext::init_with_api(
        ios_gl::EAGLRenderingAPI::kOpenGLES2, 24, 24);
    ASSERT_TRUE(first.is_ok());
    ASSERT_TRUE(second.is_ok());
    // Both contexts fell back to the refcounted shared connection.
    EXPECT_TRUE((*first)->degraded());
    EXPECT_TRUE((*second)->degraded());
    EXPECT_GE(faults.point("linker.dlforce").fires(), 3u);  // full retry rung

    // The degraded path still renders: storage + present on each context,
    // serialized under the shared connection.
    for (auto& context : {*first, *second}) {
      ios_gl::EAGLContext::set_current_context(context);
      glcore::GLuint rbo = 0;
      ios_gl::glGenRenderbuffers(1, &rbo);
      ios_gl::glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
      ASSERT_TRUE(context
                      ->renderbuffer_storage_from_drawable(
                          rbo, ios_gl::CAEAGLLayer{24, 24})
                      .is_ok());
      ASSERT_TRUE(context->present_renderbuffer(rbo).is_ok());
    }
    ios_gl::EAGLContext::clear_current_context();
  }
  faults.disarm_all();

  // With the fault gone, the next context mints a real replica again —
  // degradation is per-context, not a latched process state.
  auto recovered = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 24, 24);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_FALSE((*recovered)->degraded());
  ios_gl::EAGLContext::clear_current_context();

  analyze::Report report;
  analyze::check_diplomat_contracts(report);
  analyze::check_fault_safety(report);
  EXPECT_TRUE(report.clean()) << [&report] {
    std::ostringstream os;
    report.print(os);
    return os.str();
  }();
}

// --- Fault matrix: every catalog point, one-shot and every-Nth ----------------

class RobustnessFaultMatrixTest : public ::testing::Test {
 protected:
  // Boots a fresh stack, runs one EAGL context through storage + present
  // with the given fault armed, then asserts the process recovered: the
  // fault either was absorbed (retry / pool / degraded path) or surfaced as
  // a clean Status — and afterwards an unfaulted workload works.
  void sweep(const std::string& name, bool every_nth) {
    SCOPED_TRACE(name + (every_nth ? "=every:2" : "=once"));
    glport::apply_system_config(glport::SystemConfig::kCycadaIos);
    core::DiplomatRegistry::instance().clear_stats();
    util::FaultRegistry& faults = util::FaultRegistry::instance();
    util::FaultPoint& point = faults.point(name);
    point.reset_stats();
    if (every_nth) {
      point.arm_every(2);
    } else {
      point.arm_once();
    }
    {
      auto context = ios_gl::EAGLContext::init_with_api(
          ios_gl::EAGLRenderingAPI::kOpenGLES2, 16, 16);
      if (context.is_ok()) {
        ios_gl::EAGLContext::set_current_context(*context);
        glcore::GLuint rbo = 0;
        ios_gl::glGenRenderbuffers(1, &rbo);
        ios_gl::glBindRenderbuffer(glcore::GL_RENDERBUFFER, rbo);
        // Under injection these may fail with a clean Status; they must
        // never crash or leak a persona/lock.
        if ((*context)
                ->renderbuffer_storage_from_drawable(
                    rbo, ios_gl::CAEAGLLayer{16, 16})
                .is_ok()) {
          (void)(*context)->present_renderbuffer(rbo);
        }
        ios_gl::EAGLContext::clear_current_context();
      }
    }
    faults.disarm_all();

    // Recovery: the same workload, unfaulted, now succeeds non-degraded.
    auto recovered = ios_gl::EAGLContext::init_with_api(
        ios_gl::EAGLRenderingAPI::kOpenGLES2, 16, 16);
    ASSERT_TRUE(recovered.is_ok());
    EXPECT_FALSE((*recovered)->degraded());
    ios_gl::EAGLContext::clear_current_context();

    analyze::Report report;
    analyze::check_diplomat_contracts(report);
    analyze::check_fault_safety(report);
    EXPECT_TRUE(report.clean()) << [&report] {
      std::ostringstream os;
      report.print(os);
      return os.str();
    }();
  }
};

TEST_F(RobustnessFaultMatrixTest, EveryCatalogPointRecoversFromOneShot) {
  for (const std::string& name : util::FaultRegistry::catalog()) {
    sweep(name, /*every_nth=*/false);
  }
}

TEST_F(RobustnessFaultMatrixTest, EveryCatalogPointRecoversFromEveryNth) {
  for (const std::string& name : util::FaultRegistry::catalog()) {
    sweep(name, /*every_nth=*/true);
  }
}

TEST_F(RobustnessFaultMatrixTest, ConcurrentDispatchSurvivesPersonaInjection) {
  kernel::Kernel::instance().reset();
  core::DiplomatRegistry& registry = core::DiplomatRegistry::instance();
  registry.clear_stats();
  core::DiplomatEntry& entry = registry.entry("robustness.persona-storm",
                                              core::DiplomatPattern::kDirect);
  util::FaultPoint& point =
      util::FaultRegistry::instance().point("kernel.set_persona");
  point.reset_stats();
  point.arm_probability(200000, 11);  // 20% of persona syscalls fail

  constexpr int kThreads = 6;
  constexpr int kCallsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&entry] {
      kernel::Kernel::instance().register_current_thread(
          kernel::Persona::kIos);
      for (int i = 0; i < kCallsPerThread; ++i) {
        core::diplomat_call(entry, {}, [] {});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  point.disarm();

  // Every call completed despite the injected syscall failures...
  EXPECT_EQ(entry.calls.load(), static_cast<std::uint64_t>(kThreads) *
                                    kCallsPerThread);
  EXPECT_GT(point.fires(), 0u);
  // ...and the evidence shows balanced contracts and no leaked crossings.
  analyze::Report report;
  analyze::check_diplomat_contracts(report);
  analyze::check_fault_safety(report);
  EXPECT_TRUE(report.clean()) << [&report] {
    std::ostringstream os;
    report.print(os);
    return os.str();
  }();
}

// --- Fault-safety checker: seeded negatives ----------------------------------

TEST(RobustnessFaultSafetyTest, DetectsALeakedPersonaCrossing) {
  kernel::Kernel::instance().reset();
  kernel::Kernel::instance().register_current_thread(
      kernel::Persona::kAndroid);
  ASSERT_EQ(kernel::sys_set_persona(kernel::Persona::kIos), 0);
  analyze::Report leaked;
  analyze::check_fault_safety(leaked);
  EXPECT_TRUE(leaked.has_rule("fault.persona-leak"));

  ASSERT_EQ(kernel::sys_set_persona(kernel::Persona::kAndroid), 0);
  analyze::Report clean;
  analyze::check_fault_safety(clean);
  EXPECT_FALSE(clean.has_rule("fault.persona-leak"));
}

TEST(RobustnessFaultSafetyTest, DetectsALeakedLock) {
  util::LockOrderGraph& graph = util::LockOrderGraph::instance();
  graph.set_recording(false);
  graph.reset();
  graph.set_recording(true);
  util::OrderedMutex mutex(util::LockLevel::kLogEmit, "test.leaked-lock");
  mutex.lock();
  // Stop recording before running the checker so its own bookkeeping locks
  // don't add acquisitions; held_count() still sees the leak.
  graph.set_recording(false);
  analyze::Report leaked;
  analyze::check_fault_safety(leaked);
  EXPECT_TRUE(leaked.has_rule("fault.lock-leak"));

  mutex.unlock();
  analyze::Report clean;
  analyze::check_fault_safety(clean);
  EXPECT_FALSE(clean.has_rule("fault.lock-leak"));
  graph.reset();
}

// --- Stall channel: hang-class fault injection -------------------------------

TEST(RobustnessFaultStallTest, StallDelaysWithoutFailingAndRespectsCadence) {
  util::FaultPoint& point =
      util::FaultRegistry::instance().point("test.stall.delay");
  point.disarm();
  point.reset_stats();
  point.arm_stall(30, /*every_nth=*/2);
  // 1st traversal: off-cadence, no sleep, no failure.
  EXPECT_FALSE(point.should_fail());
  EXPECT_EQ(point.stalls(), 0u);
  // 2nd traversal: sleeps the armed 30 ms but still reports no failure —
  // the stall channel is orthogonal to the fire trigger.
  const std::int64_t start = now_ns();
  EXPECT_FALSE(point.should_fail());
  EXPECT_GE(now_ns() - start, 30'000'000);
  EXPECT_EQ(point.stalls(), 1u);
  EXPECT_EQ(point.fires(), 0u);
  // disarm_stall clears the channel; the next traversal is instant again.
  point.disarm_stall();
  EXPECT_FALSE(point.should_fail());
  EXPECT_EQ(point.stalls(), 1u);
  point.disarm();
}

TEST(RobustnessFaultStallTest, SuppressionScopeMasksTheStallChannel) {
  util::FaultPoint& point =
      util::FaultRegistry::instance().point("test.stall.suppress");
  point.disarm();
  point.reset_stats();
  point.arm_stall(40, 1);
  {
    // A recovery rung must not be delayable any more than it is failable:
    // suppressed traversals neither sleep nor tally.
    util::FaultSuppressionScope no_faults;
    EXPECT_FALSE(point.should_fail());
    EXPECT_EQ(point.stalls(), 0u);
  }
  EXPECT_FALSE(point.should_fail());
  EXPECT_EQ(point.stalls(), 1u);
  point.disarm();
}

TEST(RobustnessFaultConfigTest, StallGrammarArmsTheOrthogonalChannel) {
  util::FaultRegistry& registry = util::FaultRegistry::instance();
  util::FaultPoint& point = registry.point("test.cfg.stall");
  point.disarm();
  point.reset_stats();
  EXPECT_TRUE(registry.configure("test.cfg.stall=stall:25"));
  EXPECT_EQ(point.stall_ms(), 25u);
  // stall arms only its own channel: the fire trigger stays disarmed.
  EXPECT_EQ(point.trigger(), util::FaultTrigger::kDisarmed);
  EXPECT_TRUE(registry.configure("test.cfg.stall=stall:40:3"));
  EXPECT_EQ(point.stall_ms(), 40u);
  // Both channels arm independently from one spec — the forced-close
  // regression drives a stalled *and* failing traversal this way.
  EXPECT_TRUE(
      registry.configure("test.cfg.stall=stall:30,test.cfg.stall=every:2"));
  EXPECT_EQ(point.stall_ms(), 30u);
  EXPECT_EQ(point.trigger(), util::FaultTrigger::kEveryNth);
  // off clears both channels.
  EXPECT_TRUE(registry.configure("test.cfg.stall=off"));
  EXPECT_EQ(point.stall_ms(), 0u);
  EXPECT_EQ(point.trigger(), util::FaultTrigger::kDisarmed);
  // Rejected: zero/garbage milliseconds, zero cadence, missing argument.
  EXPECT_FALSE(registry.configure("test.cfg.stall=stall:0"));
  EXPECT_FALSE(registry.configure("test.cfg.stall=stall:abc"));
  EXPECT_FALSE(registry.configure("test.cfg.stall=stall:5:0"));
  EXPECT_FALSE(registry.configure("test.cfg.stall=stall"));
  EXPECT_EQ(point.stall_ms(), 0u);
  registry.disarm_all();
}

// --- Watchdog supervision ----------------------------------------------------

class RobustnessWatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Watchdog& watchdog = util::Watchdog::instance();
    watchdog.set_enabled(true);
    watchdog.set_budget_override_ms(0);
    watchdog.reset();
    util::FaultRegistry::instance().disarm_all();
  }
  void TearDown() override {
    util::Watchdog& watchdog = util::Watchdog::instance();
    watchdog.set_enabled(true);
    watchdog.set_budget_override_ms(0);
    watchdog.reset();
    util::FaultRegistry::instance().disarm_all();
  }

  static std::uint64_t counter(const char* name) {
    return trace::MetricsRegistry::instance().counter(name).value();
  }
};

TEST_F(RobustnessWatchdogTest, OverdueScopeEscalatesAndCleanFramesRecover) {
  util::Watchdog& watchdog = util::Watchdog::instance();
  watchdog.set_budget_override_ms(10);
  const std::uint64_t overdue_before = counter("watchdog.batch.overdue");
  const std::uint64_t up_before = counter("watchdog.rung_up");
  {
    WATCHDOG_SCOPE(util::WatchdogDomain::kBatch,
                   util::kWatchdogBatchBudgetMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  // Whether the monitor or the destructor noticed first, exactly one side
  // escalated (flagged_serial dedup): one overdue event, one rung.
  EXPECT_EQ(watchdog.rung(util::WatchdogDomain::kBatch), 1);
  EXPECT_TRUE(watchdog.degraded(util::WatchdogDomain::kBatch));
  EXPECT_EQ(counter("watchdog.batch.overdue"), overdue_before + 1);
  EXPECT_EQ(counter("watchdog.rung_up"), up_before + 1);

  const std::uint64_t down_before = counter("watchdog.rung_down");
  // The first frame after a stall absorbs the stalled-since-frame flag;
  // then recovery_frames() consecutive clean frames drop one rung.
  watchdog.note_frame();
  for (int i = 0; i < watchdog.recovery_frames(); ++i) {
    EXPECT_EQ(watchdog.rung(util::WatchdogDomain::kBatch), 1) << "frame " << i;
    watchdog.note_frame();
  }
  EXPECT_EQ(watchdog.rung(util::WatchdogDomain::kBatch), 0);
  EXPECT_EQ(counter("watchdog.rung_down"), down_before + 1);
}

TEST_F(RobustnessWatchdogTest, MonitorFlagsAStuckScopeWhileItStillRuns) {
  util::Watchdog& watchdog = util::Watchdog::instance();
  watchdog.set_budget_override_ms(10);
  util::WatchdogScope scope(util::WatchdogDomain::kCompositor,
                            util::kWatchdogCompositorBudgetMs);
  // The whole point of the monitor thread: escalation must not wait for
  // the stuck thread to come back and run its destructor. Poll the rung
  // while the scope is still open.
  const std::int64_t deadline = now_ns() + 2'000'000'000;
  while (watchdog.rung(util::WatchdogDomain::kCompositor) == 0 &&
         now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(watchdog.rung(util::WatchdogDomain::kCompositor), 0)
      << "monitor never flagged an overdue scope still in flight";
  EXPECT_TRUE(scope.overdue());
}

TEST_F(RobustnessWatchdogTest, DisabledWatchdogMakesScopesNoOps) {
  util::Watchdog& watchdog = util::Watchdog::instance();
  watchdog.set_budget_override_ms(5);
  watchdog.set_enabled(false);
  {
    WATCHDOG_SCOPE(util::WatchdogDomain::kBatch,
                   util::kWatchdogBatchBudgetMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(watchdog.rung(util::WatchdogDomain::kBatch), 0);
  watchdog.set_enabled(true);
}

// --- Recovery ladder: every rung fires under stall and climbs back -----------

class RobustnessLadderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    glport::apply_system_config(glport::SystemConfig::kCycadaIos);
    util::FaultRegistry::instance().disarm_all();
    util::Watchdog::instance().set_budget_override_ms(0);
    util::Watchdog::instance().reset();
    saved_workers_ = gpu::TileWorkerPool::instance().worker_count();
  }
  void TearDown() override {
    util::FaultRegistry::instance().disarm_all();
    util::Watchdog::instance().set_budget_override_ms(0);
    util::Watchdog::instance().reset();
    gpu::TileWorkerPool::instance().set_worker_count(saved_workers_);
    gpu::GpuDevice::instance().reset();
  }

  static std::uint64_t counter(const char* name) {
    return trace::MetricsRegistry::instance().counter(name).value();
  }

  // Clears hysteresis: absorb any stalled-since-frame flag, then feed
  // enough clean frames to walk every domain from kMaxRung back to 0.
  static void run_clean_frames() {
    util::Watchdog& watchdog = util::Watchdog::instance();
    const int frames =
        1 + util::Watchdog::kMaxRung * watchdog.recovery_frames();
    for (int i = 0; i < frames; ++i) watchdog.note_frame();
  }

  // One small frame through the device: a clear plus one triangle.
  static void render_frame() {
    gpu::GpuDevice& dev = gpu::GpuDevice::instance();
    const gpu::RenderTargetHandle target = dev.create_target(128, 128, false);
    dev.submit_clear(target, std::nullopt, true, {0.f, 0.f, 0.f, 1.f}, false,
                     1.f);
    gpu::ShadedVertex a, b, c;
    a.clip_pos = {-1.f, -1.f, 0.f, 1.f};
    b.clip_pos = {1.f, -1.f, 0.f, 1.f};
    c.clip_pos = {0.f, 1.f, 0.f, 1.f};
    dev.submit_draw(target, gpu::RasterState{}, gpu::PrimitiveKind::kTriangles,
                    {a, b, c});
    dev.submit_frame();
    dev.finish();
    EXPECT_TRUE(dev.destroy_target(target).is_ok());
  }

  int saved_workers_ = 1;
};

TEST_F(RobustnessLadderTest, StuckTilePhaseDegradesToSerialAndClimbsBack) {
  util::Watchdog& watchdog = util::Watchdog::instance();
  gpu::TileWorkerPool::instance().set_worker_count(2);
  watchdog.set_budget_override_ms(20);
  util::FaultPoint& fault =
      util::FaultRegistry::instance().point("gpu.tile_worker");
  fault.arm_stall(60, 1);  // every helper traversal sleeps past the budget
  // A helper that joins a phase stalls it past the budget and the phase
  // scope escalates. On a loaded single-core host the helper may miss a
  // given (tiny) phase entirely, so drive frames until one sticks.
  for (int frame = 0;
       frame < 20 && !watchdog.degraded(util::WatchdogDomain::kGpuPhase);
       ++frame) {
    render_frame();
  }
  fault.disarm_stall();
  ASSERT_TRUE(watchdog.degraded(util::WatchdogDomain::kGpuPhase))
      << "no stalled phase escalated in 20 frames";

  // While the rung is up, frames raster serial (and are counted as forced).
  const std::uint64_t forced_before = counter("watchdog.serial_forced");
  render_frame();
  EXPECT_GT(counter("watchdog.serial_forced"), forced_before);

  // Hysteresis climbs back to full-parallel: clean frames clear the rung
  // and the next frame is not forced serial.
  run_clean_frames();
  EXPECT_EQ(watchdog.rung(util::WatchdogDomain::kGpuPhase), 0);
  const std::uint64_t forced_recovered = counter("watchdog.serial_forced");
  render_frame();
  EXPECT_EQ(counter("watchdog.serial_forced"), forced_recovered);
}

TEST_F(RobustnessLadderTest, OverduePresentFenceForcesRetireAndDropsFrame) {
  util::Watchdog& watchdog = util::Watchdog::instance();
  gpu::GpuDevice& dev = gpu::GpuDevice::instance();
  gpu::TileWorkerPool::instance().set_worker_count(2);
  util::FaultPoint& fault =
      util::FaultRegistry::instance().point("gpu.tile_worker");

  const gpu::RenderTargetHandle target = dev.create_target(128, 128, false);
  dev.submit_clear(target, std::nullopt, true, {1.f, 0.f, 0.f, 1.f}, false,
                   1.f);
  const gpu::FenceHandle fence = dev.submit_fence();
  fault.arm_stall(120, 1);  // the in-flight frame stalls well past the wait
  dev.submit_frame();  // async: in_flight_ until the consumer retires it
  const std::uint64_t timeouts_before = counter("watchdog.present.timeouts");
  // The bounded wait gives up instead of hanging the present path: the
  // caller scans out the stale front buffer and drops the frame.
  EXPECT_FALSE(dev.wait_fence_for(fence, 10));
  EXPECT_EQ(counter("watchdog.present.timeouts"), timeouts_before + 1);
  EXPECT_TRUE(watchdog.degraded(util::WatchdogDomain::kPresent));
  fault.disarm_stall();

  // The frame was dropped, not lost: once the stall clears, the same fence
  // retires and the ladder climbs back.
  dev.finish();
  EXPECT_TRUE(dev.fence_signaled(fence));
  run_clean_frames();
  EXPECT_EQ(watchdog.rung(util::WatchdogDomain::kPresent), 0);
  EXPECT_TRUE(dev.destroy_target(target).is_ok());
}

TEST_F(RobustnessLadderTest, StalledBatchCrossingFallsBackToPlainCalls) {
  util::Watchdog& watchdog = util::Watchdog::instance();
  core::DiplomatEntry& entry = core::DiplomatRegistry::instance().entry(
      "glEnable", core::DiplomatPattern::kDirect);
  ASSERT_TRUE(entry.batchable);

  watchdog.note_stall(util::WatchdogDomain::kCrossing);
  const std::uint64_t fallback_before = counter("watchdog.batch.fallback");
  {
    core::BatchScope scope;
    // Degraded crossing: stop amortizing, run ordered plain calls.
    EXPECT_FALSE(core::batch_record(entry, {}, [] {}));
    EXPECT_EQ(core::pending_batched_calls(), 0u);
  }
  EXPECT_EQ(counter("watchdog.batch.fallback"), fallback_before + 1);

  // Hysteresis clears the rung and batching resumes.
  run_clean_frames();
  EXPECT_EQ(watchdog.rung(util::WatchdogDomain::kCrossing), 0);
  {
    core::BatchScope scope;
    EXPECT_TRUE(core::batch_record(entry, {}, [] {}));
    core::flush_current_batch(core::BatchFlushReason::kExplicit);
  }
}

// The PR's regression pin: a batch whose close both FAILS and STALLS must
// still restore the caller's persona inside a watchdog-backed bound — one
// stalled attempt, not kCrossingRetries of them serialized back to back.
TEST_F(RobustnessLadderTest, ForcedCloseStaysBoundedUnderStall) {
  util::Watchdog& watchdog = util::Watchdog::instance();
  util::FaultPoint& fault =
      util::FaultRegistry::instance().point("kernel.set_persona");
  const kernel::Persona caller =
      kernel::Kernel::instance().current_thread().persona();

  // Open a real crossing cleanly first; only the close is hostile.
  const std::uint64_t token = core::detail::batched_crossing_begin();
  ASSERT_NE(token, 0u);

  fault.reset_stats();
  watchdog.set_budget_override_ms(10);
  ASSERT_TRUE(util::FaultRegistry::instance().configure(
      "kernel.set_persona=stall:80,kernel.set_persona=every:1"));
  const std::uint64_t bounded_before = counter("watchdog.close.bounded");
  const std::uint64_t forced_before = counter("dispatch.batch.close_forced");
  EXPECT_FALSE(core::detail::batched_crossing_end(token, caller, 1));
  fault.disarm();
  watchdog.set_budget_override_ms(0);

  // Exactly one stalled+failed attempt burned the whole budget; the
  // deadline then cut the retry loop and the (suppressed, so neither
  // failable nor delayable) forced close repaired the persona.
  EXPECT_EQ(fault.fires(), 1u);
  EXPECT_EQ(fault.stalls(), 1u);
  EXPECT_EQ(counter("watchdog.close.bounded"), bounded_before + 1);
  EXPECT_EQ(counter("dispatch.batch.close_forced"), forced_before + 1);
  EXPECT_EQ(kernel::Kernel::instance().current_thread().persona(), caller);

  // The token was cleared: a fresh crossing opens and closes normally.
  const std::uint64_t next = core::detail::batched_crossing_begin();
  ASSERT_NE(next, 0u);
  EXPECT_TRUE(core::detail::batched_crossing_end(next, caller, 1));
  EXPECT_EQ(kernel::Kernel::instance().current_thread().persona(), caller);

  analyze::Report report;
  analyze::check_fault_safety(report);
  EXPECT_TRUE(report.clean()) << [&report] {
    std::ostringstream os;
    report.print(os);
    return os.str();
  }();
}

TEST_F(RobustnessLadderTest, EglRungSendsInitStraightToSharedFallback) {
  util::Watchdog& watchdog = util::Watchdog::instance();
  watchdog.note_stall(util::WatchdogDomain::kEgl);
  const std::uint64_t shared_before = counter("watchdog.egl.shared_forced");
  {
    // Rungs 1-2 (fresh/warm replica) are skipped entirely: no point burning
    // more stalled attempts when init work is already known to hang.
    auto context = ios_gl::EAGLContext::init_with_api(
        ios_gl::EAGLRenderingAPI::kOpenGLES2, 16, 16);
    ASSERT_TRUE(context.is_ok());
    EXPECT_TRUE((*context)->degraded());
    EXPECT_EQ(counter("watchdog.egl.shared_forced"), shared_before + 1);
    ios_gl::EAGLContext::clear_current_context();
  }

  // Clean frames clear the rung; the next init mints a real replica again.
  run_clean_frames();
  EXPECT_EQ(watchdog.rung(util::WatchdogDomain::kEgl), 0);
  auto recovered = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 16, 16);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_FALSE((*recovered)->degraded());
  EXPECT_EQ(counter("watchdog.egl.shared_forced"), shared_before + 1);
  ios_gl::EAGLContext::clear_current_context();
}

// --- Trace capture under fault injection -------------------------------------

// A batch whose crossing cannot open aborts to the plain single-call
// procedure (batch_test.cpp pins the atomicity). The capture layer must
// record what actually HAPPENED — four plain kCall records, no batched or
// flush records — and replaying that faulted trace with faults off must
// drive the live counters to exactly the same per-diplomat counts the
// aborted run produced.
TEST(TraceCaptureFaultTest, AbortedBatchCapturesAsPlainCallsAndReplaysTrue) {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  util::FaultRegistry::instance().disarm_all();
  core::DiplomatEntry& entry = core::DiplomatRegistry::instance().entry(
      "glEnable", core::DiplomatPattern::kDirect);
  util::FaultPoint& fault =
      util::FaultRegistry::instance().point("kernel.set_persona");

  const std::string path =
      std::string(::testing::TempDir()) + "cyt_fault_abort.cyt";
  trace::TraceRecorder& recorder = trace::TraceRecorder::instance();
  ASSERT_TRUE(recorder.start(path).is_ok());
  const std::uint64_t live_before = entry.calls.load();
  {
    core::BatchScope scope;
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(core::batch_record(entry, {}, [] {}));
    }
    // Every set_persona now fails: the crossing cannot open and the whole
    // batch falls back to single calls, under capture.
    fault.disarm();
    fault.arm_every(1);
    core::flush_current_batch(core::BatchFlushReason::kExplicit);
    fault.disarm();
  }
  const std::uint64_t live_calls = entry.calls.load() - live_before;
  ASSERT_TRUE(recorder.stop().is_ok());
  EXPECT_EQ(live_calls, 4u);

  auto parsed = trace::read_cyt(path);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  std::uint64_t plain = 0, batched = 0, flushes = 0;
  for (const trace::CytRecord& record : parsed->records) {
    if (record.type != static_cast<std::uint8_t>(trace::CytRecordType::kEvent))
      continue;
    switch (static_cast<trace::CytEventKind>(record.kind)) {
      case trace::CytEventKind::kCall: ++plain; break;
      case trace::CytEventKind::kBatchedCall: ++batched; break;
      case trace::CytEventKind::kBatchFlush: ++flushes; break;
      default: break;
    }
  }
  EXPECT_EQ(plain, 4u);
  EXPECT_EQ(batched, 0u);
  EXPECT_EQ(flushes, 0u);

  // Replay with faults off: same per-diplomat counters as the live run.
  const std::uint64_t replay_before = entry.calls.load();
  auto stats = core::replay_trace(*parsed, {});
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_EQ(entry.calls.load() - replay_before, live_calls);
  EXPECT_EQ(core::trace_call_counts(*parsed).at("glEnable"), live_calls);
}

}  // namespace
}  // namespace cycada
