// Property sweeps, concurrency stress and failure injection across the
// stack — the "keep widening coverage" suite.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "android_gl/vendor.h"
#include "core/diplomat.h"
#include "glcore/engine.h"
#include "glport/system_config.h"
#include "gpu/device.h"
#include "ios_gl/eagl.h"
#include "ios_gl/gles.h"
#include "iosurface/iosurface.h"
#include "kernel/libc.h"
#include "passmark/passmark.h"
#include "linker/linker.h"
#include "util/rng.h"
#include "webkit/browser.h"

namespace cycada {
namespace {

// --- Rasterizer property: random draws never escape the scissor -------------

class ScissorContainmentTest : public ::testing::TestWithParam<int> {};

TEST_P(ScissorContainmentTest, RandomTrianglesStayInsideScissor) {
  gpu::GpuDevice::instance().reset();
  auto& dev = gpu::GpuDevice::instance();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const int size = 32;
  const auto target = dev.create_target(size, size, true);
  dev.submit_clear(target, std::nullopt, true, {0, 0, 0, 1}, true, 1.f);

  gpu::ScissorRect scissor{static_cast<int>(rng.next_below(16)),
                           static_cast<int>(rng.next_below(16)),
                           static_cast<int>(rng.next_below(14)) + 2,
                           static_cast<int>(rng.next_below(14)) + 2};
  gpu::RasterState state;
  state.scissor = scissor;
  state.blend = rng.next_below(2) == 0;
  state.blend_src = gpu::BlendFactor::kSrcAlpha;
  state.blend_dst = gpu::BlendFactor::kOneMinusSrcAlpha;
  state.depth_test = rng.next_below(2) == 0;

  for (int i = 0; i < 20; ++i) {
    std::vector<gpu::ShadedVertex> tri(3);
    for (auto& v : tri) {
      v.clip_pos = {rng.next_float(-2.f, 2.f), rng.next_float(-2.f, 2.f),
                    rng.next_float(-1.f, 1.f), 1.f};
      v.color = {1.f, 1.f, 1.f, rng.next_float(0.2f, 1.f)};
    }
    dev.submit_draw(target, state, gpu::PrimitiveKind::kTriangles, tri);
  }
  dev.flush();

  std::vector<std::uint32_t> pixels(size * size);
  ASSERT_TRUE(
      dev.read_pixels(target, 0, 0, size, size, pixels.data(), size).is_ok());
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      const bool inside = x >= scissor.x && x < scissor.x + scissor.width &&
                          y >= scissor.y && y < scissor.y + scissor.height;
      if (!inside) {
        EXPECT_EQ(pixels[y * size + x], 0xff000000u)
            << "pixel outside scissor touched at " << x << "," << y;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScissorContainmentTest,
                         ::testing::Range(0, 12));

// --- Blend factor sweep vs. CPU-computed expectations ------------------------

struct BlendCase {
  gpu::BlendFactor src;
  gpu::BlendFactor dst;
};

class BlendSweepTest : public ::testing::TestWithParam<BlendCase> {};

TEST_P(BlendSweepTest, MatchesClosedFormBlend) {
  gpu::GpuDevice::instance().reset();
  auto& dev = gpu::GpuDevice::instance();
  const auto target = dev.create_target(4, 4, false);
  const Color dst_color{0.25f, 0.5f, 0.75f, 0.5f};
  const Color src_color{0.8f, 0.4f, 0.2f, 0.6f};
  dev.submit_clear(target, std::nullopt, true, dst_color, false, 1.f);

  gpu::RasterState state;
  state.blend = true;
  state.blend_src = GetParam().src;
  state.blend_dst = GetParam().dst;
  std::vector<gpu::ShadedVertex> quad(6);
  const float pts[6][2] = {{-1, -1}, {1, -1}, {1, 1}, {-1, -1}, {1, 1}, {-1, 1}};
  for (int i = 0; i < 6; ++i) {
    quad[i].clip_pos = {pts[i][0], pts[i][1], 0.f, 1.f};
    quad[i].color = src_color;
  }
  dev.submit_draw(target, state, gpu::PrimitiveKind::kTriangles, quad);
  std::vector<std::uint32_t> pixels(16);
  ASSERT_TRUE(dev.read_pixels(target, 0, 0, 4, 4, pixels.data(), 4).is_ok());

  // Closed-form expectation (must quantize dst through the framebuffer
  // the same way the device does).
  const Color stored_dst = unpack_rgba8888(pack_rgba8888(dst_color));
  const auto factor = [&](gpu::BlendFactor f, float s, float /*d*/) {
    switch (f) {
      case gpu::BlendFactor::kZero: return 0.f;
      case gpu::BlendFactor::kOne: return 1.f;
      case gpu::BlendFactor::kSrcAlpha: return src_color.a;
      case gpu::BlendFactor::kOneMinusSrcAlpha: return 1.f - src_color.a;
      case gpu::BlendFactor::kDstAlpha: return stored_dst.a;
      case gpu::BlendFactor::kOneMinusDstAlpha: return 1.f - stored_dst.a;
      case gpu::BlendFactor::kSrcColor: return s;
      case gpu::BlendFactor::kOneMinusSrcColor: return 1.f - s;
    }
    return 1.f;
  };
  const auto expect_channel = [&](float s, float d) {
    return clamp01(s * factor(GetParam().src, s, 0.f) +
                   d * factor(GetParam().dst, s, 0.f));
  };
  const Color expected{expect_channel(src_color.r, stored_dst.r),
                       expect_channel(src_color.g, stored_dst.g),
                       expect_channel(src_color.b, stored_dst.b),
                       expect_channel(src_color.a, stored_dst.a)};
  const Color actual = unpack_rgba8888(pixels[5]);
  EXPECT_NEAR(actual.r, expected.r, 2.f / 255.f);
  EXPECT_NEAR(actual.g, expected.g, 2.f / 255.f);
  EXPECT_NEAR(actual.b, expected.b, 2.f / 255.f);
  EXPECT_NEAR(actual.a, expected.a, 2.f / 255.f);
}

INSTANTIATE_TEST_SUITE_P(
    Factors, BlendSweepTest,
    ::testing::Values(
        BlendCase{gpu::BlendFactor::kOne, gpu::BlendFactor::kZero},
        BlendCase{gpu::BlendFactor::kSrcAlpha,
                  gpu::BlendFactor::kOneMinusSrcAlpha},
        BlendCase{gpu::BlendFactor::kOne, gpu::BlendFactor::kOne},
        BlendCase{gpu::BlendFactor::kDstAlpha, gpu::BlendFactor::kZero},
        BlendCase{gpu::BlendFactor::kSrcColor,
                  gpu::BlendFactor::kOneMinusSrcColor},
        BlendCase{gpu::BlendFactor::kZero,
                  gpu::BlendFactor::kOneMinusDstAlpha}));

// --- Topology equivalence: strip/fan/list produce identical pixels -----------

TEST(TopologyTest, StripFanAndListAgree) {
  kernel::Kernel::instance().reset();
  gpu::GpuDevice::instance().reset();
  glcore::GlesEngine engine({});
  const auto render = [&](glcore::GLenum mode, const float* verts, int count) {
    const auto target = gpu::GpuDevice::instance().create_target(16, 16, false);
    const auto ctx = engine.create_context(1);
    EXPECT_TRUE(engine.make_current(ctx, target).is_ok());
    engine.glViewport(0, 0, 16, 16);
    engine.glClearColor(0, 0, 0, 1);
    engine.glClear(glcore::GL_COLOR_BUFFER_BIT);
    engine.glColor4f(1.f, 0.f, 1.f, 1.f);
    engine.glEnableClientState(glcore::GL_VERTEX_ARRAY);
    engine.glVertexPointer(2, glcore::GL_FLOAT, 0, verts);
    engine.glDrawArrays(mode, 0, count);
    std::vector<std::uint32_t> pixels(256);
    engine.glReadPixels(0, 0, 16, 16, glcore::GL_RGBA,
                        glcore::GL_UNSIGNED_BYTE, pixels.data());
    (void)engine.make_current(glcore::kNoContext, gpu::kNoHandle);
    (void)engine.destroy_context(ctx);
    return pixels;
  };

  // The same quad three ways.
  const float list[] = {-0.5f, -0.5f, 0.5f, -0.5f, 0.5f, 0.5f,
                        -0.5f, -0.5f, 0.5f, 0.5f,  -0.5f, 0.5f};
  const float strip[] = {-0.5f, -0.5f, 0.5f, -0.5f, -0.5f, 0.5f, 0.5f, 0.5f};
  const float fan[] = {-0.5f, -0.5f, 0.5f, -0.5f, 0.5f, 0.5f, -0.5f, 0.5f};
  const auto a = render(glcore::GL_TRIANGLES, list, 6);
  const auto b = render(glcore::GL_TRIANGLE_STRIP, strip, 4);
  const auto c = render(glcore::GL_TRIANGLE_FAN, fan, 4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

// --- Kernel concurrency stress ------------------------------------------------

TEST(KernelStressTest, ConcurrentSyscallsAndTlsStayConsistent) {
  kernel::Kernel::instance().reset();
  kernel::Kernel::instance().register_current_thread(
      kernel::Persona::kAndroid);
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      auto& kernel = kernel::Kernel::instance();
      kernel.register_current_thread(t % 2 == 0 ? kernel::Persona::kAndroid
                                                : kernel::Persona::kIos);
      const kernel::TlsKey key = kernel::libc::pthread_key_create();
      if (key == kernel::kInvalidTlsKey) {
        failures.fetch_add(1);
        return;
      }
      std::intptr_t mine = t + 1;
      for (int i = 0; i < kRounds; ++i) {
        if (kernel::sys_null() != 0) failures.fetch_add(1);
        kernel.tls_set(key, reinterpret_cast<void*>(mine));
        if (kernel.tls_get(key) != reinterpret_cast<void*>(mine)) {
          failures.fetch_add(1);
        }
        const kernel::Persona persona =
            i % 2 == 0 ? kernel::Persona::kIos : kernel::Persona::kAndroid;
        if (kernel::sys_set_persona(persona) != 0) failures.fetch_add(1);
      }
      kernel::libc::pthread_key_delete(key);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- Linker stress: many replicas, concurrent loads ---------------------------

TEST(LinkerStressTest, ManyReplicasStayIsolated) {
  kernel::Kernel::instance().reset();
  gpu::GpuDevice::instance().reset();
  linker::Linker::instance().reset();
  android_gl::register_android_graphics_libraries();
  auto& linker = linker::Linker::instance();

  std::vector<linker::Handle> replicas;
  std::set<void*> globals;
  for (int i = 0; i < 40; ++i) {
    auto replica = linker.dlforce(android_gl::kNvRmLib);
    ASSERT_TRUE(replica.is_ok()) << i;
    void* global = linker.dlsym(*replica, "nv_global");
    ASSERT_NE(global, nullptr);
    EXPECT_TRUE(globals.insert(global).second) << "duplicate global at " << i;
    replicas.push_back(std::move(replica.value()));
  }
  EXPECT_EQ(linker.live_copy_count(android_gl::kNvRmLib), 40);
  for (auto& replica : replicas) {
    EXPECT_TRUE(linker.dlclose(std::move(replica)).is_ok());
  }
  EXPECT_EQ(linker.live_copy_count(android_gl::kNvRmLib), 0);
}

TEST(LinkerStressTest, ConcurrentDlopenSharesOneCopy) {
  kernel::Kernel::instance().reset();
  linker::Linker::instance().reset();
  android_gl::register_android_graphics_libraries();
  auto& linker = linker::Linker::instance();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<void*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &linker, &seen] {
      for (int i = 0; i < 50; ++i) {
        auto handle = linker.dlopen(android_gl::kNvOsLib);
        if (!handle.is_ok()) return;
        seen[t] = linker.dlsym(*handle, "nv_global");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
    EXPECT_NE(seen[t], nullptr);
  }
}

// --- Diplomat statistics under concurrency ------------------------------------

TEST(DiplomatStressTest, ConcurrentCallsCountExactly) {
  kernel::Kernel::instance().reset();
  core::DiplomatRegistry::instance().reset();
  auto& entry = core::DiplomatRegistry::instance().entry(
      "stress.fn", core::DiplomatPattern::kDirect);
  constexpr int kThreads = 8;
  constexpr int kCalls = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&entry] {
      kernel::Kernel::instance().register_current_thread(
          kernel::Persona::kIos);
      for (int i = 0; i < kCalls; ++i) {
        core::diplomat_call(entry, {}, [] {});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(entry.calls.load(), static_cast<std::uint64_t>(kThreads) * kCalls);
}

// --- End-to-end: glDeleteTextures severs the IOSurface association ------------

TEST(MultiDiplomatTest, DeleteTexturesSeversIoSurfaceBinding) {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  auto context = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 32, 32);
  ASSERT_TRUE(context.is_ok());
  ios_gl::EAGLContext::set_current_context(*context);

  auto surface = iosurface::IOSurfaceCreate({.width = 8, .height = 8});
  ASSERT_NE(surface, nullptr);
  glcore::GLuint texture = 0;
  ios_gl::glGenTextures(1, &texture);
  ASSERT_TRUE((*context)->tex_image_io_surface(surface, texture).is_ok());
  EXPECT_EQ(surface->backing()->egl_image_refs(), 1);
  EXPECT_EQ(surface->bound_texture(), texture);

  // The §6.1 multi diplomat: delete also removes the kernel-side
  // association so the surface is CPU-lockable again without the dance.
  ios_gl::glDeleteTextures(1, &texture);
  EXPECT_EQ(surface->bound_texture(), 0u);
  EXPECT_EQ(surface->backing()->egl_image_refs(), 0);
  EXPECT_TRUE(iosurface::IOSurfaceLock(surface).is_ok());
  EXPECT_TRUE(iosurface::IOSurfaceUnlock(surface).is_ok());
  ios_gl::EAGLContext::clear_current_context();
}

// --- Failure injection ----------------------------------------------------------

TEST(FailureInjectionTest, BadInputsFailGracefully) {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);

  // EAGL: present without drawable storage.
  auto context = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 16, 16);
  ASSERT_TRUE(context.is_ok());
  ios_gl::EAGLContext::set_current_context(*context);
  EXPECT_EQ((*context)->present_renderbuffer(123).code(),
            StatusCode::kFailedPrecondition);
  // EAGL: zero-size layer.
  EXPECT_FALSE((*context)
                   ->renderbuffer_storage_from_drawable(
                       1, ios_gl::CAEAGLLayer{0, 16})
                   .is_ok());
  // IOSurface: absurd dimensions.
  EXPECT_EQ(iosurface::IOSurfaceCreate({.width = 1 << 20, .height = 4}),
            nullptr);
  // gralloc: zero usage flags.
  EXPECT_FALSE(gmem::GrallocAllocator::instance()
                   .allocate(4, 4, PixelFormat::kRgba8888, 0)
                   .is_ok());
  // Engine: unknown enum surfaces as GL_INVALID_ENUM, not a crash.
  ios_gl::glEnable(0x9999);
  EXPECT_EQ(ios_gl::glGetError(), glcore::GL_INVALID_ENUM);
  ios_gl::EAGLContext::clear_current_context();
}

TEST(FailureInjectionTest, BrowserRejectsMalformedMarkupGracefully) {
  glport::apply_system_config(glport::SystemConfig::kAndroid);
  auto port = glport::make_gl_port(glport::SystemConfig::kAndroid);
  ASSERT_TRUE(port->init(64, 64, 2).is_ok());
  webkit::Browser browser(*port, true);
  EXPECT_FALSE(browser.load("<body><div>no close").is_ok());
  // The browser is still usable afterwards.
  EXPECT_TRUE(browser.load("<body bg=#102030><p>ok</p></body>").is_ok());
  EXPECT_EQ(browser.screen().at(40, 60), webkit::parse_color("#102030"));
}

// --- Determinism: identical screens across repeat runs -------------------------

TEST(DeterminismTest, PassMarkFramesAreReproducible) {
  const auto run_once = [] {
    glport::apply_system_config(glport::SystemConfig::kCycadaIos);
    auto port = glport::make_gl_port(glport::SystemConfig::kCycadaIos);
    EXPECT_TRUE(port->init(64, 64, 1).is_ok());
    passmark::PassMark passmark(*port);
    EXPECT_TRUE(passmark.run("Transparent Vectors", 3).is_ok());
    return port->screen();
  };
  const Image first = run_once();
  const Image second = run_once();
  EXPECT_EQ(Image::diff_count(first, second), 0u);
}


// --- WebKit render thread (paper §7: "the iOS WebKit library spawns a
// rendering thread ... used by other threads related to WebKit") -------------

TEST(ThreadedRenderingTest, RenderThreadMatchesInlineRendering) {
  const char* page =
      "<body bg=#203040><h1 color=#f0f0f0>threads</h1>"
      "<p color=#90c0f0>painted on a dedicated render thread</p></body>";

  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  auto inline_port = glport::make_gl_port(glport::SystemConfig::kCycadaIos);
  ASSERT_TRUE(inline_port->init(128, 128, 2).is_ok());
  webkit::Browser inline_browser(*inline_port, false);
  ASSERT_TRUE(inline_browser.load(page).is_ok());
  const Image inline_screen = inline_browser.screen();

  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  auto threaded_port = glport::make_gl_port(glport::SystemConfig::kCycadaIos);
  ASSERT_TRUE(threaded_port->init(128, 128, 2).is_ok());
  webkit::Browser threaded_browser(*threaded_port, false);
  threaded_browser.enable_threaded_rendering();
  EXPECT_TRUE(threaded_browser.threaded_rendering());
  ASSERT_TRUE(threaded_browser.load(page).is_ok());
  ASSERT_TRUE(threaded_browser.render_frame().is_ok());
  const Image threaded_screen = threaded_browser.screen();

  EXPECT_EQ(Image::diff_count(inline_screen, threaded_screen), 0u);
}

// --- Native-iOS IOSurface semantics: no dance needed -------------------------

TEST(NativeIosTest, LockSucceedsWhileTextureBoundWithoutDance) {
  glport::apply_system_config(glport::SystemConfig::kIos);
  auto context = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 16, 16);
  ASSERT_TRUE(context.is_ok());
  ios_gl::EAGLContext::set_current_context(*context);

  auto surface = iosurface::IOSurfaceCreate({.width = 8, .height = 8});
  ASSERT_NE(surface, nullptr);
  glcore::GLuint texture = 0;
  ios_gl::glGenTextures(1, &texture);
  ASSERT_TRUE((*context)->tex_image_io_surface(surface, texture).is_ok());
  // On real iOS the buffer stays GLES-associated through the lock: Apple
  // hardware permits concurrent CPU mapping (no §6.2 dance).
  const int refs_before = surface->backing()->egl_image_refs();
  EXPECT_GE(refs_before, 1);
  ASSERT_TRUE(iosurface::IOSurfaceLock(surface).is_ok());
  EXPECT_EQ(surface->backing()->egl_image_refs(), refs_before);
  auto* pixels = static_cast<std::uint32_t*>(
      iosurface::IOSurfaceGetBaseAddress(surface));
  ASSERT_NE(pixels, nullptr);
  pixels[0] = 0xff112233u;
  ASSERT_TRUE(iosurface::IOSurfaceUnlock(surface).is_ok());
  EXPECT_EQ(surface->backing()->pixels32()[0], 0xff112233u);
  ios_gl::EAGLContext::clear_current_context();
}

}  // namespace
}  // namespace cycada
