// Locks the API-registry data to the numbers of the paper's Table 1 (and
// the 344-function universe of Table 2). Any registry edit that breaks a
// published count fails here, not silently in the bench output.
#include "glcore/api_registry.h"

#include <gtest/gtest.h>

#include <set>

namespace cycada::glcore {
namespace {

TEST(ApiRegistryTest, StandardFunctionCountsMatchTable1) {
  EXPECT_EQ(ios_registry().gles1_functions.size(), 145u);
  EXPECT_EQ(ios_registry().gles2_functions.size(), 142u);
  EXPECT_EQ(android_registry().gles1_functions.size(), 145u);
  EXPECT_EQ(android_registry().gles2_functions.size(), 142u);
  EXPECT_EQ(khronos_registry().gles1_functions.size(), 145u);
  EXPECT_EQ(khronos_registry().gles2_functions.size(), 142u);
}

TEST(ApiRegistryTest, ExtensionFunctionCountsMatchTable1) {
  EXPECT_EQ(count_extension_functions(ios_registry()), 94);
  EXPECT_EQ(count_extension_functions(android_registry()), 42);
  EXPECT_EQ(count_extension_functions(khronos_registry()), 285);
}

TEST(ApiRegistryTest, CommonExtensionFunctionsMatchTable1) {
  EXPECT_EQ(
      count_common_extension_functions(ios_registry(), android_registry()),
      27);
  // Symmetry.
  EXPECT_EQ(
      count_common_extension_functions(android_registry(), ios_registry()),
      27);
}

TEST(ApiRegistryTest, ExtensionCountsMatchTable1) {
  EXPECT_EQ(ios_registry().extensions.size(), 50u);
  EXPECT_EQ(android_registry().extensions.size(), 60u);
  EXPECT_EQ(khronos_registry().extensions.size(), 174u);
  EXPECT_EQ(count_extensions_not_in(ios_registry(), android_registry()), 33);
  EXPECT_EQ(count_extensions_not_in(android_registry(), ios_registry()), 43);
  // Khronos is a superset of both platforms.
  EXPECT_EQ(count_extensions_not_in(ios_registry(), khronos_registry()), 0);
  EXPECT_EQ(count_extensions_not_in(android_registry(), khronos_registry()),
            0);
}

TEST(ApiRegistryTest, UniverseIs344Functions) {
  EXPECT_EQ(ios_function_universe().size(), 344u);
}

TEST(ApiRegistryTest, NoDuplicateStandardNames) {
  for (const ApiRegistry* registry :
       {&ios_registry(), &android_registry()}) {
    std::set<std::string> gles1(registry->gles1_functions.begin(),
                                registry->gles1_functions.end());
    std::set<std::string> gles2(registry->gles2_functions.begin(),
                                registry->gles2_functions.end());
    EXPECT_EQ(gles1.size(), registry->gles1_functions.size());
    EXPECT_EQ(gles2.size(), registry->gles2_functions.size());
    // Exactly 37 names shared between the two standard lists (this is what
    // makes 145 + 142 - 37 + 94 = 344).
    int shared = 0;
    for (const std::string& name : gles1) shared += gles2.contains(name);
    EXPECT_EQ(shared, 37);
  }
}

TEST(ApiRegistryTest, NoDuplicateExtensionNamesOrFunctions) {
  for (const ApiRegistry* registry :
       {&ios_registry(), &android_registry(), &khronos_registry()}) {
    std::set<std::string> names;
    std::set<std::string> functions;
    for (const ExtensionInfo& info : registry->extensions) {
      EXPECT_TRUE(names.insert(info.name).second) << info.name;
      for (const std::string& fn : info.functions) {
        EXPECT_TRUE(functions.insert(fn).second) << fn;
      }
    }
  }
}

TEST(ApiRegistryTest, KeyPaperExtensionsPresent) {
  const auto has_ext = [](const ApiRegistry& registry, std::string_view name) {
    for (const ExtensionInfo& info : registry.extensions) {
      if (info.name == name) return true;
    }
    return false;
  };
  // The extensions the paper's diplomat examples hinge on (§4.1).
  EXPECT_TRUE(has_ext(ios_registry(), "GL_APPLE_fence"));
  EXPECT_TRUE(has_ext(ios_registry(), "GL_APPLE_row_bytes"));
  EXPECT_FALSE(has_ext(android_registry(), "GL_APPLE_fence"));
  EXPECT_TRUE(has_ext(android_registry(), "GL_NV_fence"));
  EXPECT_FALSE(has_ext(ios_registry(), "GL_NV_fence"));
  EXPECT_TRUE(has_ext(ios_registry(), "GL_OES_EGL_image"));
  EXPECT_TRUE(has_ext(android_registry(), "GL_OES_EGL_image"));
}

TEST(ApiRegistryTest, ExtensionStringIsSpaceSeparated) {
  const std::string s = extension_string(android_registry());
  EXPECT_NE(s.find("GL_NV_fence"), std::string::npos);
  EXPECT_NE(s.find(' '), std::string::npos);
  EXPECT_EQ(s.find("  "), std::string::npos);
}

}  // namespace
}  // namespace cycada::glcore
