// Tests for the extended GLES surface: write masks, winding, copy-tex
// paths, queries and object predicates.
#include <gtest/gtest.h>

#include "glcore/engine.h"
#include "gpu/device.h"
#include "kernel/kernel.h"

namespace cycada::glcore {
namespace {

class GlExtraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel::Kernel::instance().reset();
    gpu::GpuDevice::instance().reset();
    engine_ = std::make_unique<GlesEngine>(GlesEngineConfig{});
    target_ = gpu::GpuDevice::instance().create_target(16, 16, true);
    context_ = engine_->create_context(2);
    ASSERT_TRUE(engine_->make_current(context_, target_).is_ok());
    engine_->glViewport(0, 0, 16, 16);
  }

  void draw_solid_quad(float r, float g, float b, float a = 1.f) {
    const char* vs =
        "attribute vec4 a_position; uniform mat4 u_mvp;"
        "void main() { gl_Position = u_mvp * a_position; }";
    const char* fs =
        "uniform vec4 u_color; void main() { gl_FragColor = u_color; }";
    if (program_ == 0) {
      const GLuint vsh = engine_->glCreateShader(GL_VERTEX_SHADER);
      const GLuint fsh = engine_->glCreateShader(GL_FRAGMENT_SHADER);
      engine_->glShaderSource(vsh, 1, &vs, nullptr);
      engine_->glShaderSource(fsh, 1, &fs, nullptr);
      engine_->glCompileShader(vsh);
      engine_->glCompileShader(fsh);
      program_ = engine_->glCreateProgram();
      engine_->glAttachShader(program_, vsh);
      engine_->glAttachShader(program_, fsh);
      engine_->glLinkProgram(program_);
    }
    engine_->glUseProgram(program_);
    const float identity[16] = {1, 0, 0, 0, 0, 1, 0, 0,
                                0, 0, 1, 0, 0, 0, 0, 1};
    engine_->glUniformMatrix4fv(0, 1, GL_FALSE, identity);
    engine_->glUniform4f(1, r, g, b, a);
    static const float quad[] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
    engine_->glEnableVertexAttribArray(0);
    engine_->glVertexAttribPointer(0, 2, GL_FLOAT, GL_FALSE, 0, quad);
    engine_->glDrawArrays(GL_TRIANGLES, 0, 6);
  }

  std::uint32_t pixel(int x, int y) {
    std::uint32_t value = 0;
    engine_->glReadPixels(x, y, 1, 1, GL_RGBA, GL_UNSIGNED_BYTE, &value);
    return value;
  }

  std::unique_ptr<GlesEngine> engine_;
  ContextId context_ = kNoContext;
  gpu::RenderTargetHandle target_ = gpu::kNoHandle;
  GLuint program_ = 0;
};

TEST_F(GlExtraTest, ColorMaskBlocksChannels) {
  engine_->glClearColor(0, 0, 0, 1);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  // Only the green channel may be written.
  engine_->glColorMask(GL_FALSE, GL_TRUE, GL_FALSE, GL_TRUE);
  draw_solid_quad(1.f, 1.f, 1.f);
  EXPECT_EQ(pixel(8, 8), 0xff00ff00u);
  engine_->glColorMask(GL_TRUE, GL_TRUE, GL_TRUE, GL_TRUE);
  draw_solid_quad(1.f, 0.f, 0.f);
  EXPECT_EQ(pixel(8, 8), 0xff0000ffu);
}

TEST_F(GlExtraTest, FrontFaceFlipsCulling) {
  engine_->glClearColor(0, 0, 0, 1);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  engine_->glEnable(GL_CULL_FACE);
  engine_->glCullFace(GL_BACK);
  draw_solid_quad(0.f, 0.f, 1.f);
  const std::uint32_t with_ccw = pixel(8, 8);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  engine_->glFrontFace(GL_CW);  // same geometry now counts as back-facing
  draw_solid_quad(0.f, 0.f, 1.f);
  const std::uint32_t with_cw = pixel(8, 8);
  // Exactly one of the two passes culls the quad.
  EXPECT_NE(with_ccw == 0xffff0000u, with_cw == 0xffff0000u);
  engine_->glFrontFace(0x1234);
  EXPECT_EQ(engine_->glGetError(), GL_INVALID_ENUM);
}

TEST_F(GlExtraTest, CopyTexImageRoundTrips) {
  engine_->glClearColor(1.f, 0.5f, 0.f, 1.f);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  GLuint texture = 0;
  engine_->glGenTextures(1, &texture);
  engine_->glBindTexture(GL_TEXTURE_2D, texture);
  engine_->glCopyTexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, 0, 0, 8, 8, 0);
  EXPECT_EQ(engine_->glGetError(), GL_NO_ERROR);

  // Overwrite a corner from the (re-cleared) target.
  engine_->glClearColor(0.f, 0.f, 1.f, 1.f);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  engine_->glCopyTexSubImage2D(GL_TEXTURE_2D, 0, 0, 0, 0, 0, 2, 2);
  EXPECT_EQ(engine_->glGetError(), GL_NO_ERROR);

  // Check the texture contents via the GPU view.
  auto view = gpu::GpuDevice::instance().texture_view(
      /* handle from the engine is private; sample via draw instead */ 0);
  (void)view;
  // Draw the texture and verify both regions.
  const char* vs =
      "attribute vec4 a_position; attribute vec2 a_texcoord; uniform mat4 "
      "u_mvp; varying vec2 v_uv;"
      "void main() { gl_Position = u_mvp * a_position; v_uv = a_texcoord; }";
  const char* fs =
      "uniform sampler2D u_tex; varying vec2 v_uv;"
      "void main() { gl_FragColor = texture2D(u_tex, v_uv); }";
  const GLuint vsh = engine_->glCreateShader(GL_VERTEX_SHADER);
  const GLuint fsh = engine_->glCreateShader(GL_FRAGMENT_SHADER);
  engine_->glShaderSource(vsh, 1, &vs, nullptr);
  engine_->glShaderSource(fsh, 1, &fs, nullptr);
  engine_->glCompileShader(vsh);
  engine_->glCompileShader(fsh);
  const GLuint prog = engine_->glCreateProgram();
  engine_->glAttachShader(prog, vsh);
  engine_->glAttachShader(prog, fsh);
  engine_->glLinkProgram(prog);
  engine_->glUseProgram(prog);
  const float identity[16] = {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1};
  engine_->glUniformMatrix4fv(0, 1, GL_FALSE, identity);
  engine_->glTexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MAG_FILTER, GL_NEAREST);
  static const float quad[] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  static const float uvs[] = {0, 1, 1, 1, 1, 0, 0, 1, 1, 0, 0, 0};
  engine_->glEnableVertexAttribArray(0);
  engine_->glEnableVertexAttribArray(2);
  engine_->glVertexAttribPointer(0, 2, GL_FLOAT, GL_FALSE, 0, quad);
  engine_->glVertexAttribPointer(2, 2, GL_FLOAT, GL_FALSE, 0, uvs);
  engine_->glDrawArrays(GL_TRIANGLES, 0, 6);
  // Texel (0,0) region was overwritten blue (drawn at the screen top-left
  // with these uvs); the rest is the orange clear.
  EXPECT_EQ(pixel(1, 1), 0xffff0000u);    // blue corner
  EXPECT_EQ(pixel(14, 2), 0xff0080ffu);   // orange elsewhere
}

TEST_F(GlExtraTest, GetFloatvQueries) {
  engine_->glClearColor(0.25f, 0.5f, 0.75f, 1.f);
  float clear_color[4] = {};
  engine_->glGetFloatv(GL_COLOR_CLEAR_VALUE, clear_color);
  EXPECT_FLOAT_EQ(clear_color[0], 0.25f);
  EXPECT_FLOAT_EQ(clear_color[2], 0.75f);
  engine_->glLineWidth(3.f);
  float width = 0;
  engine_->glGetFloatv(GL_LINE_WIDTH, &width);
  EXPECT_FLOAT_EQ(width, 3.f);
  engine_->glDepthRangef(0.1f, 0.9f);
  float range[2] = {};
  engine_->glGetFloatv(GL_DEPTH_RANGE, range);
  EXPECT_FLOAT_EQ(range[0], 0.1f);
  EXPECT_FLOAT_EQ(range[1], 0.9f);
  engine_->glLineWidth(-1.f);
  EXPECT_EQ(engine_->glGetError(), GL_INVALID_VALUE);
}

TEST_F(GlExtraTest, ObjectPredicates) {
  GLuint buffer = 0, texture = 0, fbo = 0, rbo = 0;
  engine_->glGenBuffers(1, &buffer);
  engine_->glGenTextures(1, &texture);
  engine_->glGenFramebuffers(1, &fbo);
  engine_->glGenRenderbuffers(1, &rbo);
  const GLuint shader = engine_->glCreateShader(GL_VERTEX_SHADER);
  const GLuint program = engine_->glCreateProgram();
  EXPECT_EQ(engine_->glIsBuffer(buffer), GL_TRUE);
  EXPECT_EQ(engine_->glIsTexture(texture), GL_TRUE);
  EXPECT_EQ(engine_->glIsFramebuffer(fbo), GL_TRUE);
  EXPECT_EQ(engine_->glIsRenderbuffer(rbo), GL_TRUE);
  EXPECT_EQ(engine_->glIsShader(shader), GL_TRUE);
  EXPECT_EQ(engine_->glIsProgram(program), GL_TRUE);
  EXPECT_EQ(engine_->glIsBuffer(9999), GL_FALSE);
  EXPECT_EQ(engine_->glIsProgram(shader), GL_FALSE);
}

TEST_F(GlExtraTest, BufferParameterQueries) {
  GLuint buffer = 0;
  engine_->glGenBuffers(1, &buffer);
  engine_->glBindBuffer(GL_ARRAY_BUFFER, buffer);
  const float data[12] = {};
  engine_->glBufferData(GL_ARRAY_BUFFER, sizeof(data), data, GL_DYNAMIC_DRAW);
  GLint size = 0, usage = 0;
  engine_->glGetBufferParameteriv(GL_ARRAY_BUFFER, GL_BUFFER_SIZE, &size);
  engine_->glGetBufferParameteriv(GL_ARRAY_BUFFER, GL_BUFFER_USAGE, &usage);
  EXPECT_EQ(size, 48);
  EXPECT_EQ(usage, static_cast<GLint>(GL_DYNAMIC_DRAW));
}

TEST_F(GlExtraTest, DetachAndValidate) {
  const GLuint vsh = engine_->glCreateShader(GL_VERTEX_SHADER);
  const GLuint program = engine_->glCreateProgram();
  engine_->glAttachShader(program, vsh);
  engine_->glDetachShader(program, vsh);
  engine_->glDetachShader(program, vsh);  // already detached
  EXPECT_EQ(engine_->glGetError(), GL_INVALID_OPERATION);
  engine_->glValidateProgram(program);
  EXPECT_EQ(engine_->glGetError(), GL_NO_ERROR);
  engine_->glValidateProgram(999);
  EXPECT_EQ(engine_->glGetError(), GL_INVALID_VALUE);
}

TEST_F(GlExtraTest, AcceptedButUnmodeledStateIsHarmless) {
  engine_->glHint(GL_GENERATE_MIPMAP_HINT, GL_FASTEST);
  engine_->glSampleCoverage(0.5f, GL_TRUE);
  engine_->glPolygonOffset(1.f, 2.f);
  engine_->glStencilFunc(GL_ALWAYS, 0, 0xff);
  engine_->glStencilMask(0xff);
  engine_->glStencilOp(GL_REPLACE, GL_REPLACE, GL_REPLACE);
  engine_->glBlendColor(0.1f, 0.2f, 0.3f, 0.4f);
  engine_->glBlendEquation(GL_FUNC_ADD);
  EXPECT_EQ(engine_->glGetError(), GL_NO_ERROR);
  engine_->glBlendEquation(0x8007);  // FUNC_SUBTRACT: not modeled
  EXPECT_EQ(engine_->glGetError(), GL_INVALID_ENUM);
  engine_->glHint(GL_GENERATE_MIPMAP_HINT, 0x9999);
  EXPECT_EQ(engine_->glGetError(), GL_INVALID_ENUM);
}

TEST_F(GlExtraTest, GenerateMipmapRequiresBoundTexture) {
  engine_->glGenerateMipmap(GL_TEXTURE_2D);
  EXPECT_EQ(engine_->glGetError(), GL_INVALID_OPERATION);
  GLuint texture = 0;
  engine_->glGenTextures(1, &texture);
  engine_->glBindTexture(GL_TEXTURE_2D, texture);
  engine_->glGenerateMipmap(GL_TEXTURE_2D);
  EXPECT_EQ(engine_->glGetError(), GL_NO_ERROR);
}

}  // namespace
}  // namespace cycada::glcore
