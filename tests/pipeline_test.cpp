// Tile-parallel frame pipeline tests (docs/PIPELINE.md). The load-bearing
// property is determinism: the framebuffer produced at N workers must be
// byte-identical to N=1 on the same scene, whatever order tiles complete or
// get stolen in. The rest exercises the async lifecycle (drain on teardown
// mid-flight) and the fault-degrade path (a failing worker pool falls back
// to single-threaded raster instead of deadlocking).
#include "gpu/pipeline.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "gpu/device.h"
#include "trace/metrics.h"
#include "util/faultpoint.h"

namespace cycada::gpu {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GpuDevice::instance().reset();
    saved_workers_ = TileWorkerPool::instance().worker_count();
    util::FaultRegistry::instance().point("gpu.tile_worker").disarm();
  }

  void TearDown() override {
    GpuDevice::instance().reset();
    util::FaultRegistry::instance().point("gpu.tile_worker").disarm();
    // Other suites in this binary expect the worker count they launched
    // with (CYCADA_GPU_WORKERS or the default), not ours.
    TileWorkerPool::instance().set_worker_count(saved_workers_);
  }

  GpuDevice& dev() { return GpuDevice::instance(); }

  int saved_workers_ = 1;
};

ShadedVertex vtx(float x, float y, float z, Color c) {
  ShadedVertex v;
  v.clip_pos = {x, y, z, 1.f};
  v.color = c;
  return v;
}

// A seeded scene big enough to span many 64x64 tiles and both kick-batch
// boundaries: interleaved clears, depth-tested triangles, blended
// triangles, lines and points, plus a scissored clear. Every run with the
// same seed submits the identical command stream.
std::vector<std::uint32_t> render_scene(GpuDevice& dev, std::uint32_t seed,
                                        int width = 200, int height = 150) {
  const RenderTargetHandle target = dev.create_target(width, height, true);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> pos(-1.2f, 1.2f);
  std::uniform_real_distribution<float> depth(-0.9f, 0.9f);
  std::uniform_real_distribution<float> channel(0.f, 1.f);

  dev.submit_clear(target, std::nullopt, true,
                   {channel(rng), channel(rng), channel(rng), 1.f}, true, 1.f);
  for (int i = 0; i < 48; ++i) {
    RasterState state;
    state.depth_test = (i % 3) != 0;
    if (i % 5 == 0) {
      state.blend = true;
      state.blend_src = BlendFactor::kSrcAlpha;
      state.blend_dst = BlendFactor::kOneMinusSrcAlpha;
    }
    const Color color{channel(rng), channel(rng), channel(rng),
                      0.25f + 0.75f * channel(rng)};
    const float z = depth(rng);
    std::vector<ShadedVertex> tri = {vtx(pos(rng), pos(rng), z, color),
                                     vtx(pos(rng), pos(rng), z, color),
                                     vtx(pos(rng), pos(rng), z, color)};
    dev.submit_draw(target, state, PrimitiveKind::kTriangles, std::move(tri));
    if (i == 20) {
      dev.submit_clear(target, ScissorRect{30, 30, 60, 40}, true,
                       {0.f, 0.f, 0.f, 1.f}, false, 1.f);
    }
    if (i % 7 == 0) {
      RasterState line_state;
      std::vector<ShadedVertex> line = {
          vtx(pos(rng), pos(rng), 0.f, color),
          vtx(pos(rng), pos(rng), 0.f, color)};
      dev.submit_draw(target, line_state, PrimitiveKind::kLines,
                      std::move(line));
    }
  }
  dev.submit_frame();
  std::vector<std::uint32_t> pixels(static_cast<std::size_t>(width) * height);
  EXPECT_TRUE(
      dev.read_pixels(target, 0, 0, width, height, pixels.data(), width)
          .is_ok());
  EXPECT_TRUE(dev.destroy_target(target).is_ok());
  return pixels;
}

TEST_F(PipelineTest, FramebufferIsByteIdenticalAcrossWorkerCounts) {
  for (const std::uint32_t seed : {1u, 7u, 42u}) {
    TileWorkerPool::instance().set_worker_count(1);
    const std::vector<std::uint32_t> serial = render_scene(dev(), seed);
    for (const int workers : {2, 4}) {
      TileWorkerPool::instance().set_worker_count(workers);
      const std::vector<std::uint32_t> tiled = render_scene(dev(), seed);
      ASSERT_EQ(serial, tiled)
          << "seed " << seed << " diverged at " << workers << " workers";
    }
  }
}

TEST_F(PipelineTest, TilesAreClaimedInParallelPhases) {
  TileWorkerPool::instance().set_worker_count(4);
  trace::MetricsRegistry& metrics = trace::MetricsRegistry::instance();
  const std::uint64_t tiles_before = metrics.counter("pipeline.tiles").value();
  (void)render_scene(dev(), 3);
  // 200x150 target = 4x3 tile grid: at least one frame's worth of tiles.
  EXPECT_GE(metrics.counter("pipeline.tiles").value(), tiles_before + 12);
}

TEST_F(PipelineTest, AsyncFrameRetiresFenceAndSurvivesTeardownMidFlight) {
  TileWorkerPool::instance().set_worker_count(4);
  const RenderTargetHandle target = dev().create_target(256, 192, true);
  const Color white{1.f, 1.f, 1.f, 1.f};
  dev().submit_clear(target, std::nullopt, true, {0.f, 0.f, 1.f, 1.f}, true,
                     1.f);
  for (int i = 0; i < 6; ++i) {
    std::vector<ShadedVertex> tri = {vtx(-1.f, -1.f, 0.f, white),
                                     vtx(1.f, -1.f, 0.f, white),
                                     vtx(0.f, 1.f, 0.f, white)};
    dev().submit_draw(target, RasterState{}, PrimitiveKind::kTriangles,
                      std::move(tri));
  }
  const FenceHandle fence = dev().submit_fence();
  dev().submit_frame();
  // Tear the pool down while the frame may still be in flight: shutdown
  // must drain cleanly (frame executed, fence signaled), never abandon or
  // double-run work.
  TileWorkerPool::instance().shutdown();
  EXPECT_TRUE(dev().fence_signaled(fence));
  EXPECT_EQ(dev().pending_commands(), 0u);
  std::vector<std::uint32_t> pixels(256 * 192);
  ASSERT_TRUE(
      dev().read_pixels(target, 0, 0, 256, 192, pixels.data(), 256).is_ok());
  EXPECT_EQ(pixels[0], 0xffff0000u);            // blue background (ABGR)
  EXPECT_EQ(pixels[100 * 256 + 128], 0xffffffffu);  // white triangle interior
  // The pool restarts transparently after a shutdown.
  (void)render_scene(dev(), 9);
}

TEST_F(PipelineTest, FaultedWorkersDegradeToSerialWithoutDeadlock) {
  TileWorkerPool::instance().set_worker_count(1);
  const std::vector<std::uint32_t> reference = render_scene(dev(), 11);

  TileWorkerPool::instance().set_worker_count(4);
  util::FaultPoint& fault =
      util::FaultRegistry::instance().point("gpu.tile_worker");
  fault.arm_every(1);  // every probe traversal fails
  trace::MetricsRegistry& metrics = trace::MetricsRegistry::instance();
  const std::uint64_t degraded_before =
      metrics.counter("pipeline.frames.serial_degraded").value();
  const std::vector<std::uint32_t> degraded = render_scene(dev(), 11);
  fault.disarm();

  // The frame completed (no deadlock — the coordinator is fault-suppressed
  // and finishes every tile), produced the right pixels, and was counted.
  EXPECT_EQ(reference, degraded);
  EXPECT_GT(metrics.counter("pipeline.frames.serial_degraded").value(),
            degraded_before);
}

TEST_F(PipelineTest, FramebufferFeedbackForcesSerialPhase) {
  TileWorkerPool::instance().set_worker_count(4);
  trace::MetricsRegistry& metrics = trace::MetricsRegistry::instance();
  const std::uint64_t feedback_before =
      metrics.counter("pipeline.feedback_serialized").value();
  // A texture aliasing the render target's own memory: the binner must
  // detect the overlap and serialize rather than let tiles race the
  // feedback loop.
  const RenderTargetHandle target = dev().create_target(128, 128, false);
  const auto view = dev().target_view(target);
  ASSERT_TRUE(view.status().is_ok());
  const TextureHandle texture = dev().create_texture();
  ASSERT_TRUE(dev()
                  .bind_texture_external(texture, view.value().color, 128, 128,
                                         view.value().stride_px)
                  .is_ok());
  RasterState state;
  state.texture = texture;
  const Color white{1.f, 1.f, 1.f, 1.f};
  std::vector<ShadedVertex> quad = {
      vtx(-1, -1, 0, white), vtx(1, -1, 0, white), vtx(1, 1, 0, white),
      vtx(-1, -1, 0, white), vtx(1, 1, 0, white),  vtx(-1, 1, 0, white)};
  dev().submit_draw(target, state, PrimitiveKind::kTriangles, std::move(quad));
  dev().submit_frame();
  dev().finish();
  EXPECT_GT(metrics.counter("pipeline.feedback_serialized").value(),
            feedback_before);
}

}  // namespace
}  // namespace cycada::gpu
