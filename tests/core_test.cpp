#include "core/diplomat.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/classification.h"
#include "core/impersonation.h"

namespace cycada::core {
namespace {

class DiplomatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel::Kernel::instance().reset(kernel::TrapModel::kCycada);
    DiplomatRegistry::instance().reset();
    GraphicsTlsTracker::instance().reset();
    kernel::Kernel::instance().register_current_thread(
        kernel::Persona::kIos);
  }
};

TEST_F(DiplomatTest, CallRunsDomesticInAndroidPersona) {
  DiplomatEntry& entry =
      DiplomatRegistry::instance().entry("glClear", DiplomatPattern::kDirect);
  kernel::Persona seen = kernel::Persona::kIos;
  diplomat_call(entry, {}, [&] {
    seen = kernel::Kernel::instance().current_thread().persona();
  });
  EXPECT_EQ(seen, kernel::Persona::kAndroid);
  // Back in the foreign persona after the call.
  EXPECT_EQ(kernel::Kernel::instance().current_thread().persona(),
            kernel::Persona::kIos);
  EXPECT_EQ(entry.calls.load(), 1u);
}

TEST_F(DiplomatTest, CallReturnsDomesticValue) {
  DiplomatEntry& entry = DiplomatRegistry::instance().entry(
      "glGetError", DiplomatPattern::kDirect);
  const int value = diplomat_call(entry, {}, [] { return 42; });
  EXPECT_EQ(value, 42);
}

TEST_F(DiplomatTest, PreludeAndPostludeRunInForeignPersona) {
  DiplomatEntry& entry = DiplomatRegistry::instance().entry(
      "glFlush", DiplomatPattern::kDirect);
  std::vector<std::pair<std::string, kernel::Persona>> trace;
  DiplomatHooks hooks;
  hooks.prelude = [&] {
    trace.emplace_back("prelude",
                       kernel::Kernel::instance().current_thread().persona());
  };
  hooks.postlude = [&] {
    trace.emplace_back("postlude",
                       kernel::Kernel::instance().current_thread().persona());
  };
  diplomat_call(entry, hooks, [&] {
    trace.emplace_back("domestic",
                       kernel::Kernel::instance().current_thread().persona());
  });
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], (std::pair<std::string, kernel::Persona>{
                          "prelude", kernel::Persona::kIos}));
  EXPECT_EQ(trace[1], (std::pair<std::string, kernel::Persona>{
                          "domestic", kernel::Persona::kAndroid}));
  EXPECT_EQ(trace[2], (std::pair<std::string, kernel::Persona>{
                          "postlude", kernel::Persona::kIos}));
}

TEST_F(DiplomatTest, ErrnoIsConvertedToDarwin) {
  DiplomatEntry& entry =
      DiplomatRegistry::instance().entry("open", DiplomatPattern::kDirect);
  diplomat_call(entry, {}, [] {
    kernel::libc::set_errno(11);  // Linux EAGAIN
  });
  // The foreign persona sees Darwin EAGAIN (35).
  EXPECT_EQ(kernel::libc::get_errno(), 35);
}

TEST_F(DiplomatTest, NestedDiplomatsRestorePersona) {
  DiplomatEntry& outer =
      DiplomatRegistry::instance().entry("outer", DiplomatPattern::kMulti);
  DiplomatEntry& inner =
      DiplomatRegistry::instance().entry("inner", DiplomatPattern::kDirect);
  diplomat_call(outer, {}, [&] {
    // Domestic code invoking another diplomat: caller persona is Android
    // and must be restored to Android, not blindly to iOS.
    diplomat_call(inner, {}, [] {});
    EXPECT_EQ(kernel::Kernel::instance().current_thread().persona(),
              kernel::Persona::kAndroid);
  });
  EXPECT_EQ(kernel::Kernel::instance().current_thread().persona(),
            kernel::Persona::kIos);
}

TEST_F(DiplomatTest, ProfilingRecordsTime) {
  DiplomatRegistry::instance().set_profiling(true);
  DiplomatEntry& entry = DiplomatRegistry::instance().entry(
      "glDrawArrays", DiplomatPattern::kDirect);
  diplomat_call(entry, {}, [] {
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  });
  EXPECT_EQ(entry.calls.load(), 1u);
  EXPECT_GT(entry.total_ns(), 0);
  // Entries are process-lifetime, so other tests' entries may also be in
  // the snapshot; find ours rather than assuming it is alone.
  auto snapshot = DiplomatRegistry::instance().snapshot();
  auto it = std::find_if(snapshot.begin(), snapshot.end(), [](const auto& s) {
    return s.name == "glDrawArrays";
  });
  ASSERT_NE(it, snapshot.end());
  EXPECT_GT(it->p50_ns, 0);
  EXPECT_GE(it->p99_ns, it->p50_ns);
  DiplomatRegistry::instance().clear_stats();
  for (const auto& s : DiplomatRegistry::instance().snapshot()) {
    EXPECT_EQ(s.calls, 0u);
  }
}

TEST_F(DiplomatTest, CallCountsIdenticalWithProfilingOnAndOff) {
  DiplomatEntry& entry = DiplomatRegistry::instance().entry(
      "glFinish", DiplomatPattern::kDirect);
  DiplomatRegistry::instance().set_profiling(false);
  for (int i = 0; i < 3; ++i) diplomat_call(entry, {}, [] {});
  EXPECT_EQ(entry.calls.load(), 3u);
  EXPECT_EQ(entry.latency.count(), 0u);  // no latency samples when off
  DiplomatRegistry::instance().set_profiling(true);
  for (int i = 0; i < 3; ++i) diplomat_call(entry, {}, [] {});
  EXPECT_EQ(entry.calls.load(), 6u);
  EXPECT_EQ(entry.latency.count(), 3u);
}

TEST_F(DiplomatTest, RegistryDeduplicatesEntries) {
  DiplomatEntry& a =
      DiplomatRegistry::instance().entry("glClear", DiplomatPattern::kDirect);
  DiplomatEntry& b =
      DiplomatRegistry::instance().entry("glClear", DiplomatPattern::kDirect);
  EXPECT_EQ(&a, &b);
}

class TrackerTest : public DiplomatTest {};

TEST_F(TrackerTest, OnlyGatedKeysAreGraphicsKeys) {
  GraphicsTlsTracker& tracker = GraphicsTlsTracker::instance();
  tracker.install();
  const kernel::TlsKey plain = kernel::libc::pthread_key_create();
  tracker.enter_graphics_diplomat();
  const kernel::TlsKey graphics = kernel::libc::pthread_key_create();
  tracker.exit_graphics_diplomat();
  EXPECT_FALSE(tracker.is_graphics_key(plain));
  EXPECT_TRUE(tracker.is_graphics_key(graphics));
  // Deleting a key untracks it.
  kernel::libc::pthread_key_delete(graphics);
  EXPECT_FALSE(tracker.is_graphics_key(graphics));
}

TEST_F(TrackerTest, WellKnownKeysAreTracked) {
  GraphicsTlsTracker& tracker = GraphicsTlsTracker::instance();
  tracker.install();
  const kernel::TlsKey apple_slot = kernel::libc::pthread_key_create();
  tracker.add_well_known_key(apple_slot);
  EXPECT_TRUE(tracker.is_graphics_key(apple_slot));
}

TEST_F(TrackerTest, GatingIsReentrant) {
  GraphicsTlsTracker& tracker = GraphicsTlsTracker::instance();
  tracker.install();
  tracker.enter_graphics_diplomat();
  tracker.enter_graphics_diplomat();
  tracker.exit_graphics_diplomat();
  EXPECT_TRUE(tracker.in_graphics_diplomat());
  tracker.exit_graphics_diplomat();
  EXPECT_FALSE(tracker.in_graphics_diplomat());
}

class ImpersonationTest : public DiplomatTest {};

TEST_F(ImpersonationTest, MigratesGraphicsTlsBothWays) {
  GraphicsTlsTracker& tracker = GraphicsTlsTracker::instance();
  tracker.install();
  tracker.enter_graphics_diplomat();
  const kernel::TlsKey key = kernel::libc::pthread_key_create();
  tracker.exit_graphics_diplomat();

  kernel::Kernel& kernel = kernel::Kernel::instance();
  // Target thread sets its graphics TLS (Android persona) and stays alive.
  kernel::Tid target_tid = kernel::kInvalidTid;
  int target_value = 1;
  int running_value = 2;
  std::atomic<bool> ready{false}, done{false};
  void* target_after = nullptr;
  std::thread target([&] {
    kernel.register_current_thread(kernel::Persona::kAndroid);
    target_tid = kernel.current_thread().tid();
    kernel.tls_set(key, &target_value);
    ready.store(true);
    while (!done.load()) std::this_thread::yield();
    target_after = kernel.tls_get(key);
  });
  while (!ready.load()) std::this_thread::yield();

  // Running thread (iOS persona): its own value in the Android slot.
  {
    kernel::ScopedPersona android(kernel::Persona::kAndroid);
    kernel.tls_set(key, &running_value);
  }

  int updated_value = 3;
  {
    ThreadImpersonation impersonation(target_tid);
    ASSERT_TRUE(impersonation.active());
    EXPECT_EQ(kernel::sys_gettid(), target_tid);
    kernel::ScopedPersona android(kernel::Persona::kAndroid);
    // The running thread now sees the target's value...
    EXPECT_EQ(kernel.tls_get(key), &target_value);
    // ...and updates it while impersonating.
    kernel.tls_set(key, &updated_value);
  }
  // Identity restored.
  EXPECT_EQ(kernel::sys_gettid(), kernel.current_thread().tid());
  {
    kernel::ScopedPersona android(kernel::Persona::kAndroid);
    // The running thread's own TLS was restored.
    EXPECT_EQ(kernel.tls_get(key), &running_value);
  }
  done.store(true);
  target.join();
  // The update was reflected back to the target thread.
  EXPECT_EQ(target_after, &updated_value);
}

TEST_F(ImpersonationTest, SelfAndInvalidTargetsAreNoOps) {
  const kernel::Tid self = kernel::Kernel::instance().current_thread().tid();
  ThreadImpersonation self_imp(self);
  EXPECT_FALSE(self_imp.active());
  ThreadImpersonation bad(99999);
  EXPECT_FALSE(bad.active());
  EXPECT_EQ(kernel::sys_gettid(), self);
}

TEST(ClassificationTest, Table2CountsMatchPaper) {
  const Table2Counts counts = count_table2();
  EXPECT_EQ(counts.direct, 312);
  EXPECT_EQ(counts.indirect, 15);
  EXPECT_EQ(counts.data_dependent, 5);
  EXPECT_EQ(counts.multi, 2);
  EXPECT_EQ(counts.unimplemented, 10);
  EXPECT_EQ(counts.total(), 344);
}

TEST(ClassificationTest, AppleFenceIsIndirect) {
  EXPECT_EQ(classify_ios_gl_function("glSetFenceAPPLE"),
            DiplomatPattern::kIndirect);
  EXPECT_EQ(classify_ios_gl_function("glGetString"),
            DiplomatPattern::kDataDependent);
  EXPECT_EQ(classify_ios_gl_function("glDeleteTextures"),
            DiplomatPattern::kMulti);
  EXPECT_EQ(classify_ios_gl_function("glClear"), DiplomatPattern::kDirect);
}

}  // namespace
}  // namespace cycada::core
