#include "linker/linker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

namespace cycada::linker {
namespace {

// Lifecycle counters shared by the test libraries.
std::atomic<int> g_constructed{0};
std::atomic<int> g_destroyed{0};

// A test library with a mutable global and an init-data value computed by
// its "constructor".
class CounterLib : public LibraryInstance {
 public:
  explicit CounterLib(std::string name) : name_(std::move(name)) {
    init_data_ = g_constructed.fetch_add(1) + 1000;
  }
  ~CounterLib() override { g_destroyed.fetch_add(1); }

  void* symbol(std::string_view symbol) override {
    if (symbol == "global_counter") return &global_counter_;
    if (symbol == "init_data") return &init_data_;
    if (symbol == "lib_name") return &name_;
    return nullptr;
  }

 private:
  std::string name_;
  int global_counter_ = 0;
  int init_data_ = 0;
};

LibraryImage make_image(std::string name, std::vector<std::string> deps) {
  LibraryImage image;
  image.name = name;
  image.deps = std::move(deps);
  image.factory = [name](LoadContext&) {
    return std::make_unique<CounterLib>(name);
  };
  return image;
}

class LinkerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Linker::instance().reset();
    g_constructed.store(0);
    g_destroyed.store(0);
    // Mirror the paper's example tree: libGLESv2_tegra.so -> libnvrm.so ->
    // libnvos.so (§8.1).
    ASSERT_TRUE(Linker::instance()
                    .register_image(make_image("libnvos.so", {}))
                    .is_ok());
    ASSERT_TRUE(Linker::instance()
                    .register_image(make_image("libnvrm.so", {"libnvos.so"}))
                    .is_ok());
    ASSERT_TRUE(Linker::instance()
                    .register_image(
                        make_image("libGLESv2_tegra.so", {"libnvrm.so"}))
                    .is_ok());
  }
};

TEST_F(LinkerTest, DlopenSharesTheLoadedCopy) {
  Linker& linker = Linker::instance();
  auto first = linker.dlopen("libnvos.so");
  auto second = linker.dlopen("libnvos.so");
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(linker.load_count("libnvos.so"), 1);
  EXPECT_EQ(linker.dlsym(*first, "global_counter"),
            linker.dlsym(*second, "global_counter"));
}

TEST_F(LinkerTest, DlopenUnknownLibraryFails) {
  auto result = Linker::instance().dlopen("libmissing.so");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(LinkerTest, DuplicateRegistrationFails) {
  EXPECT_FALSE(Linker::instance()
                   .register_image(make_image("libnvos.so", {}))
                   .is_ok());
}

TEST_F(LinkerTest, DependenciesLoadAndResolveTransitively) {
  Linker& linker = Linker::instance();
  auto gles = linker.dlopen("libGLESv2_tegra.so");
  ASSERT_TRUE(gles.is_ok());
  // The whole chain loaded.
  EXPECT_EQ(linker.load_count("libnvrm.so"), 1);
  EXPECT_EQ(linker.load_count("libnvos.so"), 1);
  // dlsym searches the dependency tree: the root resolves its own name
  // first, and symbols only deps export are still found.
  auto* name = static_cast<std::string*>(linker.dlsym(*gles, "lib_name"));
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(*name, "libGLESv2_tegra.so");
}

TEST_F(LinkerTest, DlforceCreatesIndependentReplicas) {
  Linker& linker = Linker::instance();
  auto base = linker.dlopen("libGLESv2_tegra.so");
  auto replica1 = linker.dlforce("libGLESv2_tegra.so");
  auto replica2 = linker.dlforce("libGLESv2_tegra.so");
  ASSERT_TRUE(base.is_ok());
  ASSERT_TRUE(replica1.is_ok());
  ASSERT_TRUE(replica2.is_ok());

  // Every symbol of every replica has a unique virtual address (§8.1):
  // globals and init data included.
  for (const char* symbol : {"global_counter", "init_data", "lib_name"}) {
    std::set<void*> addresses = {linker.dlsym(*base, symbol),
                                 linker.dlsym(*replica1, symbol),
                                 linker.dlsym(*replica2, symbol)};
    EXPECT_EQ(addresses.size(), 3u) << symbol;
    EXPECT_FALSE(addresses.contains(nullptr)) << symbol;
  }

  // Constructors ran once per copy, dependency closure included:
  // 3 libraries x (1 base + 2 replicas).
  EXPECT_EQ(g_constructed.load(), 9);
  EXPECT_EQ(linker.load_count("libnvos.so"), 3);
  EXPECT_EQ(linker.live_copy_count("libnvos.so"), 3);
}

TEST_F(LinkerTest, ReplicaGlobalsAreIsolated) {
  Linker& linker = Linker::instance();
  auto replica1 = linker.dlforce("libGLESv2_tegra.so");
  auto replica2 = linker.dlforce("libGLESv2_tegra.so");
  ASSERT_TRUE(replica1.is_ok());
  ASSERT_TRUE(replica2.is_ok());

  auto* counter1 = static_cast<int*>(linker.dlsym(*replica1, "global_counter"));
  auto* counter2 = static_cast<int*>(linker.dlsym(*replica2, "global_counter"));
  ASSERT_NE(counter1, nullptr);
  ASSERT_NE(counter2, nullptr);
  *counter1 = 41;
  EXPECT_EQ(*counter2, 0);
}

TEST_F(LinkerTest, DlopenInsideReplicaNamespaceSharesReplicaCopy) {
  Linker& linker = Linker::instance();
  auto replica = linker.dlforce("libGLESv2_tegra.so");
  ASSERT_TRUE(replica.is_ok());
  const NamespaceId ns = (*replica)->namespace_id();
  EXPECT_NE(ns, kGlobalNamespace);

  // Lazy dlopen from code inside the replica resolves within the replica
  // tree, not to a fresh copy and not to the global namespace.
  auto inner = linker.dlopen("libnvrm.so", ns);
  ASSERT_TRUE(inner.is_ok());
  EXPECT_EQ(inner->get(), (*replica)->deps()[0].get());
  auto global = linker.dlopen("libnvrm.so");
  ASSERT_TRUE(global.is_ok());
  EXPECT_NE(global->get(), inner->get());
}

TEST_F(LinkerTest, DlcloseUnloadsWholeReplicaTree) {
  Linker& linker = Linker::instance();
  auto replica = linker.dlforce("libGLESv2_tegra.so");
  ASSERT_TRUE(replica.is_ok());
  EXPECT_EQ(g_constructed.load(), 3);
  ASSERT_TRUE(linker.dlclose(std::move(*replica)).is_ok());
  EXPECT_EQ(g_destroyed.load(), 3);
  EXPECT_EQ(linker.live_copy_count("libnvos.so"), 0);
}

TEST_F(LinkerTest, DlcloseKeepsCopiesOthersStillReference) {
  Linker& linker = Linker::instance();
  auto tree = linker.dlopen("libGLESv2_tegra.so");
  auto dep = linker.dlopen("libnvrm.so");
  ASSERT_TRUE(tree.is_ok());
  ASSERT_TRUE(dep.is_ok());
  ASSERT_TRUE(linker.dlclose(std::move(*tree)).is_ok());
  // libnvrm is still dlopen'd explicitly; it and its own dep must survive.
  EXPECT_EQ(linker.live_copy_count("libnvrm.so"), 1);
  EXPECT_EQ(linker.live_copy_count("libnvos.so"), 1);
  EXPECT_EQ(linker.live_copy_count("libGLESv2_tegra.so"), 0);
  auto* counter = static_cast<int*>(linker.dlsym(*dep, "global_counter"));
  ASSERT_NE(counter, nullptr);
  *counter = 5;  // must not be use-after-free (exercised under ASan runs)
}

TEST_F(LinkerTest, DiamondDependencySharedWithinNamespace) {
  Linker& linker = Linker::instance();
  ASSERT_TRUE(linker.register_image(make_image("libd.so", {})).is_ok());
  ASSERT_TRUE(
      linker.register_image(make_image("libb.so", {"libd.so"})).is_ok());
  ASSERT_TRUE(
      linker.register_image(make_image("libc2.so", {"libd.so"})).is_ok());
  ASSERT_TRUE(linker
                  .register_image(make_image("liba.so", {"libb.so", "libc2.so"}))
                  .is_ok());

  auto root = linker.dlforce("liba.so");
  ASSERT_TRUE(root.is_ok());
  // Within one namespace the diamond shares a single libd copy.
  EXPECT_EQ(linker.live_copy_count("libd.so"), 1);
  const auto& deps = (*root)->deps();
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_EQ(deps[0]->deps()[0].get(), deps[1]->deps()[0].get());
}

TEST_F(LinkerTest, MissingDependencyFailsTheWholeLoad) {
  Linker& linker = Linker::instance();
  ASSERT_TRUE(
      linker.register_image(make_image("libbroken.so", {"libnowhere.so"}))
          .is_ok());
  auto result = linker.dlopen("libbroken.so");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(linker.live_copy_count("libbroken.so"), 0);
}

TEST_F(LinkerTest, DoubleDlcloseViaDuplicateHandlesKeepsAccounting) {
  Linker& linker = Linker::instance();
  auto handle = linker.dlopen("libnvos.so");
  ASSERT_TRUE(handle.is_ok());
  Handle duplicate = *handle;
  // First close drops one reference; the duplicate still pins the copy.
  EXPECT_TRUE(linker.dlclose(std::move(*handle)).is_ok());
  EXPECT_EQ(linker.live_copy_count("libnvos.so"), 1);
  EXPECT_EQ(g_destroyed.load(), 0);
  // Second close releases the last reference and unloads exactly once.
  EXPECT_TRUE(linker.dlclose(std::move(duplicate)).is_ok());
  EXPECT_EQ(linker.live_copy_count("libnvos.so"), 0);
  EXPECT_EQ(g_destroyed.load(), 1);
}

TEST_F(LinkerTest, DlcloseStaleHandleReturnsNotFoundAndProtectsNewCopy) {
  Linker& linker = Linker::instance();
  auto original = linker.dlopen("libnvos.so");
  ASSERT_TRUE(original.is_ok());
  Handle stale = *original;
  // Drop the registry's knowledge of the copy while the caller still holds
  // a handle (the double-close shape: the slot is reloaded underneath it).
  linker.reset();
  ASSERT_TRUE(linker.register_image(make_image("libnvos.so", {})).is_ok());
  auto fresh = linker.dlopen("libnvos.so");
  ASSERT_TRUE(fresh.is_ok());
  ASSERT_NE(fresh->get(), stale.get());

  // Closing the stale handle must be an explicit error — silently accepting
  // it would decrement the fresh copy's use count out from under its users.
  const Status result = linker.dlclose(std::move(stale));
  EXPECT_EQ(result.code(), StatusCode::kNotFound);
  EXPECT_EQ(linker.live_copy_count("libnvos.so"), 1);
  auto* counter = static_cast<int*>(linker.dlsym(*fresh, "global_counter"));
  ASSERT_NE(counter, nullptr);
  *counter = 7;  // the fresh copy is still live and usable
  EXPECT_TRUE(linker.dlclose(std::move(*fresh)).is_ok());
}

TEST_F(LinkerTest, DlopenSharedFallbackLoadsGlobalCopyAndCounts) {
  Linker& linker = Linker::instance();
  auto fallback = linker.dlopen_shared_fallback("libGLESv2_tegra.so");
  ASSERT_TRUE(fallback.is_ok());
  EXPECT_EQ((*fallback)->namespace_id(), kGlobalNamespace);
  // A second fallback shares the same global copy.
  auto again = linker.dlopen_shared_fallback("libGLESv2_tegra.so");
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(fallback->get(), again->get());
  EXPECT_EQ(linker.load_count("libGLESv2_tegra.so"), 1);
}

TEST_F(LinkerTest, DlsymUnknownSymbolReturnsNull) {
  auto lib = Linker::instance().dlopen("libnvos.so");
  ASSERT_TRUE(lib.is_ok());
  EXPECT_EQ(Linker::instance().dlsym(*lib, "no_such_symbol"), nullptr);
  EXPECT_EQ(Linker::instance().dlsym(nullptr, "global_counter"), nullptr);
}

}  // namespace
}  // namespace cycada::linker
