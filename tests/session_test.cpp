// Session-scoped runtime tests (docs/SESSIONS.md): facet isolation, COW
// dispatch shadowing, create/destroy churn hygiene, per-session fault
// targeting, per-session watchdog ladders, and fleet-style neighbor
// isolation under injected chaos. The suite runs in the CI TSan leg — the
// churn and isolation tests create real concurrency on purpose.
#include "core/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/diplomat.h"
#include "core/impersonation.h"
#include "glport/gl_port.h"
#include "glport/system_config.h"
#include "gmem/graphic_buffer.h"
#include "gpu/device.h"
#include "kernel/kernel.h"
#include "linker/linker.h"
#include "passmark/passmark.h"
#include "trace/metrics.h"
#include "util/clock.h"
#include "util/epoch.h"
#include "util/faultpoint.h"
#include "util/watchdog.h"

namespace cycada::core {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    glport::apply_system_config(glport::SystemConfig::kCycadaIos);
    util::FaultRegistry::instance().reset();
    util::FaultRegistry::set_session_filter(-1);
    SessionRegistry::instance().clear_cross_leak_evidence();
  }
  void TearDown() override {
    util::FaultRegistry::instance().reset();
    util::FaultRegistry::set_session_filter(-1);
  }
};

// --- Facets -----------------------------------------------------------------

TEST_F(SessionTest, UnboundThreadResolvesDefaultSessionFacets) {
  ASSERT_EQ(Session::bound(), nullptr);
  EXPECT_TRUE(Session::current().is_default());
  // The compatibility contract: unbound instance() calls are the immortal
  // singletons the pre-session code used.
  kernel::Kernel* unbound = &kernel::Kernel::instance();
  {
    SessionScope scope(Session::default_session());
    EXPECT_EQ(&kernel::Kernel::instance(), unbound);
  }
  EXPECT_EQ(&kernel::Kernel::instance(), unbound);
}

TEST_F(SessionTest, EachSessionGetsPrivateFacets) {
  SessionRegistry& registry = SessionRegistry::instance();
  auto a = registry.create("facets-a");
  auto b = registry.create("facets-b");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());

  kernel::Kernel* default_kernel = &kernel::Kernel::instance();
  kernel::Kernel* a_kernel = nullptr;
  linker::Linker* a_linker = nullptr;
  gpu::GpuDevice* a_device = nullptr;
  {
    SessionScope scope(**a);
    a_kernel = &kernel::Kernel::instance();
    a_linker = &linker::Linker::instance();
    a_device = &gpu::GpuDevice::instance();
    // Stable within the session, and the facet knows its owner.
    EXPECT_EQ(&kernel::Kernel::instance(), a_kernel);
    EXPECT_EQ(a_kernel->owner(), *a);
  }
  {
    SessionScope scope(**b);
    EXPECT_NE(&kernel::Kernel::instance(), a_kernel);
    EXPECT_NE(&linker::Linker::instance(), a_linker);
    EXPECT_NE(&gpu::GpuDevice::instance(), a_device);
    EXPECT_NE(&kernel::Kernel::instance(), default_kernel);
  }
  EXPECT_NE(a_kernel, default_kernel);

  registry.destroy(*a);
  registry.destroy(*b);
}

TEST_F(SessionTest, ScopesNestAndRestore) {
  SessionRegistry& registry = SessionRegistry::instance();
  auto a = registry.create("nest-a");
  auto b = registry.create("nest-b");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  {
    SessionScope outer(**a);
    EXPECT_EQ(&Session::current(), *a);
    {
      SessionScope inner(**b);
      EXPECT_EQ(&Session::current(), *b);
    }
    EXPECT_EQ(&Session::current(), *a);
  }
  EXPECT_EQ(Session::bound(), nullptr);
  registry.destroy(*a);
  registry.destroy(*b);
}

// --- COW dispatch -----------------------------------------------------------

TEST_F(SessionTest, SessionLocalDiplomatShadowsOnlyInSession) {
  DiplomatRegistry& registry = DiplomatRegistry::instance();
  SessionRegistry& sessions = SessionRegistry::instance();
  auto session = sessions.create("cow");
  ASSERT_TRUE(session.is_ok());

  // A shared diplomat everyone sees.
  DiplomatEntry& shared =
      registry.entry("session_test.shared", DiplomatPattern::kDirect);
  util::EpochReclaimer::Guard guard;  // pins the tables we dereference
  const std::size_t shared_entries = registry.table().entries.size();

  DiplomatEntry* local = nullptr;
  {
    SessionScope scope(**session);
    local = &registry.register_session_local("session_test.local",
                                             DiplomatPattern::kIndirect);
    // Local ids come down from the top of the id space so shared ids stay
    // dense positions.
    EXPECT_GE(local->id, static_cast<DiplomatId>(1 << 13));
    EXPECT_EQ(local->owner, *session);
    // In-session lookup resolves the local entry; the shared one still
    // resolves too (the fork holds a superset).
    EXPECT_EQ(&registry.entry("session_test.local", DiplomatPattern::kDirect),
              local);
    EXPECT_EQ(&registry.entry("session_test.shared", DiplomatPattern::kDirect),
              &shared);
  }
  // Outside the session the local registration is invisible in the shared
  // (cross-session) table, which did not grow.
  EXPECT_EQ(registry.table().find_entry("session_test.local"), nullptr);
  EXPECT_EQ(registry.table().entries.size(), shared_entries);
  EXPECT_EQ(registry.table().find_entry("session_test.shared"), &shared);

  // Shadowing: a session-local registration of a *shared* name replaces it
  // in the fork only.
  DiplomatEntry* shadow = nullptr;
  {
    SessionScope scope(**session);
    shadow = &registry.register_session_local("session_test.shared",
                                              DiplomatPattern::kMulti);
    EXPECT_NE(shadow, &shared);
    EXPECT_EQ(&registry.entry("session_test.shared", DiplomatPattern::kMulti),
              shadow);
    EXPECT_EQ(shadow->pattern, DiplomatPattern::kMulti);
    // Re-registering the same name in the same session is idempotent.
    EXPECT_EQ(&registry.register_session_local("session_test.shared",
                                               DiplomatPattern::kMulti),
              shadow);
  }
  EXPECT_EQ(&registry.entry("session_test.shared", DiplomatPattern::kDirect),
            &shared);

  sessions.destroy(*session);
  // After destruction nothing leaks into the shared view.
  EXPECT_EQ(registry.table().find_entry("session_test.local"), nullptr);
  EXPECT_EQ(registry.table().find_entry("session_test.shared"), &shared);
}

TEST_F(SessionTest, SupersededForkTablesDrainThroughTheEpochReclaimer) {
  util::EpochReclaimer& epoch = util::EpochReclaimer::instance();
  (void)epoch.try_reclaim();
  const std::uint64_t reclaimed_before = epoch.reclaimed_total();

  SessionRegistry& sessions = SessionRegistry::instance();
  auto session = sessions.create("fork-churn");
  ASSERT_TRUE(session.is_ok());
  constexpr int kForks = 32;
  {
    SessionScope scope(**session);
    for (int i = 0; i < kForks; ++i) {
      DiplomatRegistry::instance().register_session_local(
          "session_test.fork" + std::to_string(i), DiplomatPattern::kDirect);
    }
  }
  sessions.destroy(*session);
  (void)epoch.try_reclaim();
  // Every superseded fork (and the final one, retired by the session's
  // teardown) drains; the first fork's base is the live shared table and is
  // never retired.
  EXPECT_GE(epoch.reclaimed_total() - reclaimed_before,
            static_cast<std::uint64_t>(kForks - 1));
}

// --- Lifecycle churn --------------------------------------------------------

TEST_F(SessionTest, ChurnLeaksNothingIntoTheDefaultSession) {
  SessionRegistry& registry = SessionRegistry::instance();
  kernel::Kernel& default_kernel = kernel::Kernel::instance();

  // Any TLS-key traffic on the *default* kernel during churn means a
  // session facet resolved the wrong kernel (the teardown-binding bug
  // class): sessions must create and delete keys on their own kernels.
  std::atomic<int> default_creates{0};
  std::atomic<int> default_deletes{0};
  const int create_hook = default_kernel.add_key_create_hook(
      [&](kernel::TlsKey) { default_creates.fetch_add(1); });
  const int delete_hook = default_kernel.add_key_delete_hook(
      [&](kernel::TlsKey) { default_deletes.fetch_add(1); });

  const std::size_t live_before = registry.live_count();
  const std::uint64_t created_before = registry.created_total();
  constexpr int kGenerations = 100;
  for (int generation = 0; generation < kGenerations; ++generation) {
    auto session = registry.create("churn-" + std::to_string(generation));
    ASSERT_TRUE(session.is_ok());
    {
      SessionScope scope(**session);
      kernel::Kernel::instance().register_current_thread(
          kernel::Persona::kIos);
      GraphicsTlsTracker::instance().install();
      // Every fourth generation boots the full graphics stack (EGL wrapper
      // replica, vendor connection, device) — the expensive teardown path.
      if (generation % 4 == 0) {
        auto port = glport::make_ios_port();
        ASSERT_TRUE(port->init(32, 32, 1).is_ok());
        port->begin_frame();
        port->clear_color(0.1f, 0.2f, 0.3f, 1.0f);
        ASSERT_TRUE(port->present().is_ok());
      }
    }
    registry.destroy(*session);
  }

  EXPECT_EQ(registry.live_count(), live_before);
  EXPECT_EQ(registry.created_total() - created_before,
            static_cast<std::uint64_t>(kGenerations));
  EXPECT_EQ(default_creates.load(), 0);
  EXPECT_EQ(default_deletes.load(), 0);
  // Nothing churned across sessions.
  EXPECT_EQ(Session::default_session().cross_leak_total(), 0u);

  default_kernel.remove_key_create_hook(create_hook);
  default_kernel.remove_key_delete_hook(delete_hook);
}

TEST_F(SessionTest, ConcurrentChurnIsRaceFree) {
  SessionRegistry& registry = SessionRegistry::instance();
  const std::size_t live_before = registry.live_count();
  constexpr int kThreads = 4;
  constexpr int kGenerationsPerThread = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int g = 0; g < kGenerationsPerThread; ++g) {
        auto session = registry.create("churn-t" + std::to_string(t) + "-" +
                                       std::to_string(g));
        if (!session.is_ok()) {
          failures.fetch_add(1);
          continue;
        }
        {
          SessionScope scope(**session);
          kernel::Kernel::instance().register_current_thread(
              kernel::Persona::kIos);
          GraphicsTlsTracker::instance().install();
          // Session-local facet traffic from several threads at once.
          (void)gmem::GrallocAllocator::instance().allocate(
              8, 8, PixelFormat::kRgba8888,
              gmem::kUsageCpuRead | gmem::kUsageCpuWrite);
          DiplomatRegistry::instance().register_session_local(
              "session_test.churn-t" + std::to_string(t),
              DiplomatPattern::kDirect);
        }
        registry.destroy(*session);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registry.live_count(), live_before);
}

// --- Faults & watchdog ------------------------------------------------------

TEST_F(SessionTest, SessionCreateFaultProbeFailsAtomically) {
  SessionRegistry& registry = SessionRegistry::instance();
  const std::size_t live_before = registry.live_count();
  util::FaultRegistry::instance().point("session.create").arm_every(1);
  auto session = registry.create("doomed");
  EXPECT_FALSE(session.is_ok());
  EXPECT_EQ(registry.live_count(), live_before);
  util::FaultRegistry::instance().reset();
  auto ok = registry.create("alive");
  ASSERT_TRUE(ok.is_ok());
  registry.destroy(*ok);
}

TEST_F(SessionTest, SessionCapLimitsLiveSessions) {
  SessionRegistry& registry = SessionRegistry::instance();
  const std::size_t cap_before = registry.max_sessions();
  registry.set_max_sessions(2);
  auto a = registry.create("cap-a");
  auto b = registry.create("cap-b");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  auto c = registry.create("cap-c");
  EXPECT_FALSE(c.is_ok());
  registry.destroy(*a);
  auto d = registry.create("cap-d");
  EXPECT_TRUE(d.is_ok());
  registry.destroy(*b);
  if (d.is_ok()) registry.destroy(*d);
  registry.set_max_sessions(cap_before);
}

TEST_F(SessionTest, WatchdogLaddersAreSessionPrivate) {
  SessionRegistry& registry = SessionRegistry::instance();
  auto a = registry.create("ladder-a");
  auto b = registry.create("ladder-b");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  util::Watchdog& watchdog = util::Watchdog::instance();
  constexpr auto kDomain = util::WatchdogDomain::kEgl;

  {
    SessionScope scope(**a);
    watchdog.note_stall(kDomain);
    watchdog.note_stall(kDomain);
    EXPECT_EQ(watchdog.rung(kDomain), 2);
  }
  {
    // The neighbor's ladder never moved — degradation is per session.
    SessionScope scope(**b);
    EXPECT_EQ(watchdog.rung(kDomain), 0);
  }
  EXPECT_EQ(watchdog.rung(kDomain), 0);  // default session untouched

  // Recovery is per session too: clean frames in A lower only A's rungs.
  {
    SessionScope scope(**a);
    for (int i = 0; i < watchdog.recovery_frames() * (2 + 1); ++i) {
      watchdog.note_frame();
    }
    EXPECT_EQ(watchdog.rung(kDomain), 0);
  }
  registry.destroy(*a);
  registry.destroy(*b);
}

// --- Fleet-style neighbor isolation under chaos -----------------------------

// One session is driven with injected faults and stalls (the fleet's
// CYCADA_FAULT_SESSION mechanism) while a neighbor renders the same
// workload; every neighbor frame must land inside the liveness envelope
// and come out byte-identical to an undisturbed reference.
TEST_F(SessionTest, ChaosInOneSessionLeavesTheNeighborLive) {
  constexpr std::int64_t kEnvelopeMs = 5000;
  constexpr int kFrames = 3;

  SessionRegistry& registry = SessionRegistry::instance();
  auto chaos = registry.create("chaos");
  auto neighbor = registry.create("neighbor");
  ASSERT_TRUE(chaos.is_ok());
  ASSERT_TRUE(neighbor.is_ok());

  auto render = [&](Session& session, bool tolerate_errors,
                    std::int64_t* worst_frame_ns) -> bool {
    SessionScope scope(session);
    kernel::Kernel::instance().register_current_thread(kernel::Persona::kIos);
    GraphicsTlsTracker::instance().install();
    auto port = glport::make_ios_port();
    if (!port->init(64, 64, 1).is_ok()) return tolerate_errors;
    passmark::PassMark passmark(*port);
    for (int frame = 0; frame < kFrames; ++frame) {
      const std::int64_t start = now_ns();
      const bool ok = passmark.run("Solid Vectors", 1).is_ok();
      const std::int64_t elapsed = now_ns() - start;
      if (elapsed > *worst_frame_ns) *worst_frame_ns = elapsed;
      if (!ok && !tolerate_errors) return false;
    }
    return true;
  };

  // Target every armed probe at the chaos session only: stalls on the EGL
  // bring-up path plus a high error probability on the vendor connection.
  util::FaultRegistry& faults = util::FaultRegistry::instance();
  util::FaultRegistry::set_session_filter((*chaos)->id());
  faults.point("egl.create_context").arm_stall(60, 1);
  faults.point("linker.dlforce").arm_probability(200000, 7);
  faults.point("gmem.allocate").arm_probability(100000, 11);

  std::int64_t chaos_worst_ns = 0;
  std::int64_t neighbor_worst_ns = 0;
  std::atomic<bool> neighbor_ok{false};
  std::thread chaos_thread([&] {
    (void)render(**chaos, /*tolerate_errors=*/true, &chaos_worst_ns);
  });
  std::thread neighbor_thread([&] {
    neighbor_ok.store(
        render(**neighbor, /*tolerate_errors=*/false, &neighbor_worst_ns));
  });
  chaos_thread.join();
  neighbor_thread.join();

  faults.reset();
  util::FaultRegistry::set_session_filter(-1);

  EXPECT_TRUE(neighbor_ok.load());
  EXPECT_LT(neighbor_worst_ns, kEnvelopeMs * 1'000'000)
      << "neighbor frame broke the liveness envelope while the chaos "
         "session was under injection";
  EXPECT_EQ((*neighbor)->cross_leak_total(), 0u);

  registry.destroy(*chaos);
  registry.destroy(*neighbor);
}

// --- Metrics ----------------------------------------------------------------

TEST_F(SessionTest, ScopedCountersCarryTheSessionDimension) {
  SessionRegistry& registry = SessionRegistry::instance();
  auto session = registry.create("metrics");
  ASSERT_TRUE(session.is_ok());
  (*session)->scoped_counter("frames").add();
  const std::string name =
      "session.s" + std::to_string((*session)->id()) + ".frames";
  EXPECT_EQ(trace::MetricsRegistry::instance().counter(name).value(), 1u);
  // Default session counters stay unprefixed (the singleton names).
  Session::default_session().scoped_counter("session_test.plain").add();
  EXPECT_EQ(trace::MetricsRegistry::instance()
                .counter("session_test.plain")
                .value(),
            1u);
  registry.destroy(*session);
}

}  // namespace
}  // namespace cycada::core
