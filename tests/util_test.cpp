#include <gtest/gtest.h>

#include <cmath>

#include "util/geometry.h"
#include "util/image.h"
#include "util/pixel.h"
#include "util/rng.h"
#include "util/status.h"

namespace cycada {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status error = Status::not_found("missing");
  EXPECT_FALSE(error.is_ok());
  EXPECT_EQ(error.code(), StatusCode::kNotFound);
  EXPECT_EQ(error.to_string(), "NOT_FOUND: missing");
  EXPECT_EQ(Status::ok().to_string(), "OK");
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(*value, 42);
  StatusOr<int> error = Status::internal("boom");
  EXPECT_FALSE(error.is_ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInternal);
  EXPECT_EQ(error.value_or(-1), -1);
  EXPECT_EQ(value.value_or(-1), 42);
}

TEST(PixelTest, PackUnpackRoundTripsAllChannels) {
  // Property: every 8-bit channel value survives a pack/unpack round trip.
  for (int v = 0; v < 256; v += 5) {
    const Color color{v / 255.f, (255 - v) / 255.f, ((v * 3) % 256) / 255.f,
                      ((v * 7) % 256) / 255.f};
    const Color round = unpack_rgba8888(pack_rgba8888(color));
    EXPECT_NEAR(round.r, color.r, 0.5f / 255.f);
    EXPECT_NEAR(round.g, color.g, 0.5f / 255.f);
    EXPECT_NEAR(round.b, color.b, 0.5f / 255.f);
    EXPECT_NEAR(round.a, color.a, 0.5f / 255.f);
  }
}

TEST(PixelTest, Rgb565RoundTripWithinQuantization) {
  const Color color{0.4f, 0.7f, 0.1f, 1.f};
  const Color round = unpack_rgb565(pack_rgb565(color));
  EXPECT_NEAR(round.r, color.r, 1.f / 31.f);
  EXPECT_NEAR(round.g, color.g, 1.f / 63.f);
  EXPECT_NEAR(round.b, color.b, 1.f / 31.f);
  EXPECT_FLOAT_EQ(round.a, 1.f);
}

TEST(PixelTest, PackingIsLittleEndianRgba) {
  EXPECT_EQ(pack_rgba8888({1.f, 0.f, 0.f, 1.f}), 0xff0000ffu);
  EXPECT_EQ(pack_rgba8888({0.f, 1.f, 0.f, 1.f}), 0xff00ff00u);
  EXPECT_EQ(pack_rgba8888({0.f, 0.f, 1.f, 1.f}), 0xffff0000u);
}

TEST(GeometryTest, MatrixIdentityAndAssociativity) {
  const Mat4 identity = Mat4::identity();
  const Mat4 a = Mat4::rotate(33.f, 0.f, 0.f, 1.f) * Mat4::translate(1, 2, 3);
  const Vec4 p{0.5f, -1.f, 2.f, 1.f};
  const Vec4 via_identity = (identity * a) * p;
  const Vec4 direct = a * p;
  EXPECT_NEAR(via_identity.x, direct.x, 1e-5f);
  EXPECT_NEAR(via_identity.y, direct.y, 1e-5f);
  // (A*B)*p == A*(B*p)
  const Mat4 b = Mat4::scale(2.f, 0.5f, 1.f);
  const Vec4 left = (a * b) * p;
  const Vec4 right = a * (b * p);
  EXPECT_NEAR(left.x, right.x, 1e-4f);
  EXPECT_NEAR(left.y, right.y, 1e-4f);
  EXPECT_NEAR(left.z, right.z, 1e-4f);
}

TEST(GeometryTest, RotationPreservesLength) {
  const Mat4 rotation = Mat4::rotate(67.f, 1.f, 2.f, 3.f);
  const Vec4 p{1.f, -2.f, 0.5f, 1.f};
  const Vec4 q = rotation * p;
  const float len_p = std::sqrt(p.x * p.x + p.y * p.y + p.z * p.z);
  const float len_q = std::sqrt(q.x * q.x + q.y * q.y + q.z * q.z);
  EXPECT_NEAR(len_p, len_q, 1e-4f);
}

TEST(GeometryTest, OrthoMapsCornersToNdc) {
  const Mat4 ortho = Mat4::ortho(0.f, 100.f, 100.f, 0.f, -1.f, 1.f);
  const Vec4 top_left = ortho * Vec4{0.f, 0.f, 0.f, 1.f};
  EXPECT_NEAR(top_left.x, -1.f, 1e-5f);
  EXPECT_NEAR(top_left.y, 1.f, 1e-5f);
  const Vec4 bottom_right = ortho * Vec4{100.f, 100.f, 0.f, 1.f};
  EXPECT_NEAR(bottom_right.x, 1.f, 1e-5f);
  EXPECT_NEAR(bottom_right.y, -1.f, 1e-5f);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  EXPECT_NE(Rng(7).next_u64(), c.next_u64());
  // next_double in [0,1), next_float in range.
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const float f = r.next_float(-2.f, 3.f);
    EXPECT_GE(f, -2.f);
    EXPECT_LT(f, 3.f);
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(ImageTest, DiffAndChannelDelta) {
  Image a(4, 4, 0xff000000u);
  Image b(4, 4, 0xff000000u);
  EXPECT_EQ(Image::diff_count(a, b), 0u);
  EXPECT_EQ(Image::max_channel_delta(a, b), 0);
  b.at(1, 2) = 0xff000005u;
  EXPECT_EQ(Image::diff_count(a, b), 1u);
  EXPECT_EQ(Image::max_channel_delta(a, b), 5);
  Image c(3, 4);
  EXPECT_EQ(Image::max_channel_delta(a, c), 255);
}

TEST(ImageTest, PpmWriteProducesFile) {
  Image image(2, 2, 0xff00ff00u);
  const std::string path = "/tmp/cycada_ppm_test.ppm";
  ASSERT_TRUE(image.write_ppm(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char header[2] = {};
  ASSERT_EQ(std::fread(header, 1, 2, file), 2u);
  EXPECT_EQ(header[0], 'P');
  EXPECT_EQ(header[1], '6');
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_FALSE(image.write_ppm("/no/such/dir/file.ppm"));
}

}  // namespace
}  // namespace cycada
