#include "glcore/engine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "gpu/device.h"
#include "kernel/kernel.h"

namespace cycada::glcore {
namespace {

constexpr char kVsSolid[] =
    "attribute vec4 a_position; uniform mat4 u_mvp;"
    "void main() { gl_Position = u_mvp * a_position; }";
constexpr char kVsColor[] =
    "attribute vec4 a_position; attribute vec4 a_color; uniform mat4 u_mvp;"
    "varying vec4 v_color;"
    "void main() { gl_Position = u_mvp * a_position; v_color = a_color; }";
constexpr char kFsSolid[] =
    "uniform vec4 u_color; void main() { gl_FragColor = u_color; }";
constexpr char kFsColor[] =
    "varying vec4 v_color; void main() { gl_FragColor = v_color; }";
constexpr char kVsTex[] =
    "attribute vec4 a_position; attribute vec2 a_texcoord; uniform mat4 u_mvp;"
    "varying vec2 v_uv;"
    "void main() { gl_Position = u_mvp * a_position; v_uv = a_texcoord; }";
constexpr char kFsTex[] =
    "uniform sampler2D u_tex; varying vec2 v_uv;"
    "void main() { gl_FragColor = texture2D(u_tex, v_uv); }";

// Builds and links a program from two sources; returns the program name.
GLuint build_program(GlesEngine& gl, const char* vs_src, const char* fs_src) {
  const GLuint vs = gl.glCreateShader(GL_VERTEX_SHADER);
  const GLuint fs = gl.glCreateShader(GL_FRAGMENT_SHADER);
  gl.glShaderSource(vs, 1, &vs_src, nullptr);
  gl.glShaderSource(fs, 1, &fs_src, nullptr);
  gl.glCompileShader(vs);
  gl.glCompileShader(fs);
  const GLuint prog = gl.glCreateProgram();
  gl.glAttachShader(prog, vs);
  gl.glAttachShader(prog, fs);
  gl.glLinkProgram(prog);
  GLint linked = GL_FALSE;
  gl.glGetProgramiv(prog, GL_LINK_STATUS, &linked);
  EXPECT_EQ(linked, GL_TRUE);
  return prog;
}

const float kIdentity[16] = {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1};

class GlcoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel::Kernel::instance().reset();
    gpu::GpuDevice::instance().reset();
    engine_ = std::make_unique<GlesEngine>(GlesEngineConfig{
        .vendor = "Test",
        .renderer = "SoftGPU",
        .extensions = "GL_NV_fence GL_OES_EGL_image",
        .supports_nv_fence = true,
    });
    target_ = gpu::GpuDevice::instance().create_target(32, 32, true);
  }

  // Creates a v2 context, makes it current and sets the viewport.
  void make_current_v2() {
    context_ = engine_->create_context(2);
    ASSERT_TRUE(engine_->make_current(context_, target_).is_ok());
    engine_->glViewport(0, 0, 32, 32);
  }

  void make_current_v1() {
    context_ = engine_->create_context(1);
    ASSERT_TRUE(engine_->make_current(context_, target_).is_ok());
    engine_->glViewport(0, 0, 32, 32);
  }

  std::vector<std::uint32_t> read_target() {
    std::vector<std::uint32_t> pixels(32 * 32);
    engine_->glReadPixels(0, 0, 32, 32, GL_RGBA, GL_UNSIGNED_BYTE,
                          pixels.data());
    return pixels;
  }

  std::unique_ptr<GlesEngine> engine_;
  ContextId context_ = kNoContext;
  gpu::RenderTargetHandle target_ = gpu::kNoHandle;
};

TEST_F(GlcoreTest, ClearWritesClearColor) {
  make_current_v2();
  engine_->glClearColor(1.f, 0.f, 0.f, 1.f);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  const auto pixels = read_target();
  for (std::uint32_t pixel : pixels) EXPECT_EQ(pixel, 0xff0000ffu);
}

TEST_F(GlcoreTest, SolidProgramDrawsUniformColor) {
  make_current_v2();
  engine_->glClearColor(0.f, 0.f, 0.f, 1.f);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  const GLuint prog = build_program(*engine_, kVsSolid, kFsSolid);
  engine_->glUseProgram(prog);
  engine_->glUniformMatrix4fv(engine_->glGetUniformLocation(prog, "u_mvp"), 1,
                              GL_FALSE, kIdentity);
  engine_->glUniform4f(engine_->glGetUniformLocation(prog, "u_color"), 0.f,
                       1.f, 0.f, 1.f);
  const float quad[] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  engine_->glEnableVertexAttribArray(0);
  engine_->glVertexAttribPointer(0, 2, GL_FLOAT, GL_FALSE, 0, quad);
  engine_->glDrawArrays(GL_TRIANGLES, 0, 6);
  const auto pixels = read_target();
  for (std::uint32_t pixel : pixels) EXPECT_EQ(pixel, 0xff00ff00u);
  EXPECT_EQ(engine_->glGetError(), GL_NO_ERROR);
}

TEST_F(GlcoreTest, VertexColorsInterpolate) {
  make_current_v2();
  const GLuint prog = build_program(*engine_, kVsColor, kFsColor);
  engine_->glUseProgram(prog);
  engine_->glUniformMatrix4fv(0, 1, GL_FALSE, kIdentity);
  const float quad[] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  // Red on the left edge, blue on the right edge.
  const float colors[] = {1, 0, 0, 1, 0, 0, 1, 1, 0, 0, 1, 1,
                          1, 0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1};
  engine_->glEnableVertexAttribArray(0);
  engine_->glEnableVertexAttribArray(1);
  engine_->glVertexAttribPointer(0, 2, GL_FLOAT, GL_FALSE, 0, quad);
  engine_->glVertexAttribPointer(1, 4, GL_FLOAT, GL_FALSE, 0, colors);
  engine_->glDrawArrays(GL_TRIANGLES, 0, 6);
  const auto pixels = read_target();
  const std::uint32_t left = pixels[16 * 32 + 1];
  const std::uint32_t right = pixels[16 * 32 + 30];
  EXPECT_GT(left & 0xff, 200u);                  // red channel high on left
  EXPECT_GT((right >> 16) & 0xff, 200u);         // blue channel high on right
}

TEST_F(GlcoreTest, VertexBufferObjectsFeedAttributes) {
  make_current_v2();
  const GLuint prog = build_program(*engine_, kVsSolid, kFsSolid);
  engine_->glUseProgram(prog);
  engine_->glUniformMatrix4fv(0, 1, GL_FALSE, kIdentity);
  engine_->glUniform4f(1, 0.f, 0.f, 1.f, 1.f);
  const float quad[] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  GLuint vbo = 0;
  engine_->glGenBuffers(1, &vbo);
  engine_->glBindBuffer(GL_ARRAY_BUFFER, vbo);
  engine_->glBufferData(GL_ARRAY_BUFFER, sizeof(quad), quad, GL_STATIC_DRAW);
  engine_->glEnableVertexAttribArray(0);
  engine_->glVertexAttribPointer(0, 2, GL_FLOAT, GL_FALSE, 0, nullptr);
  engine_->glDrawArrays(GL_TRIANGLES, 0, 6);
  const auto pixels = read_target();
  EXPECT_EQ(pixels[0], 0xffff0000u);
  EXPECT_EQ(engine_->glGetError(), GL_NO_ERROR);
}

TEST_F(GlcoreTest, DrawElementsWithIndexBuffer) {
  make_current_v2();
  const GLuint prog = build_program(*engine_, kVsSolid, kFsSolid);
  engine_->glUseProgram(prog);
  engine_->glUniformMatrix4fv(0, 1, GL_FALSE, kIdentity);
  engine_->glUniform4f(1, 1.f, 1.f, 1.f, 1.f);
  const float corners[] = {-1, -1, 1, -1, 1, 1, -1, 1};
  const std::uint16_t indices[] = {0, 1, 2, 0, 2, 3};
  engine_->glEnableVertexAttribArray(0);
  engine_->glVertexAttribPointer(0, 2, GL_FLOAT, GL_FALSE, 0, corners);
  GLuint ibo = 0;
  engine_->glGenBuffers(1, &ibo);
  engine_->glBindBuffer(GL_ELEMENT_ARRAY_BUFFER, ibo);
  engine_->glBufferData(GL_ELEMENT_ARRAY_BUFFER, sizeof(indices), indices,
                        GL_STATIC_DRAW);
  engine_->glDrawElements(GL_TRIANGLES, 6, GL_UNSIGNED_SHORT, nullptr);
  const auto pixels = read_target();
  EXPECT_EQ(pixels[5 * 32 + 5], 0xffffffffu);
}

TEST_F(GlcoreTest, TexturedQuadReplicatesTexels) {
  make_current_v2();
  const GLuint prog = build_program(*engine_, kVsTex, kFsTex);
  engine_->glUseProgram(prog);
  engine_->glUniformMatrix4fv(0, 1, GL_FALSE, kIdentity);
  GLuint tex = 0;
  engine_->glGenTextures(1, &tex);
  engine_->glBindTexture(GL_TEXTURE_2D, tex);
  engine_->glTexParameteri(GL_TEXTURE_2D, GL_TEXTURE_MAG_FILTER, GL_NEAREST);
  const std::uint32_t texels[4] = {0xff0000ffu, 0xff0000ffu, 0xff0000ffu,
                                   0xff0000ffu};
  engine_->glTexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, 2, 2, 0, GL_RGBA,
                        GL_UNSIGNED_BYTE, texels);
  const float quad[] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  const float uvs[] = {0, 0, 1, 0, 1, 1, 0, 0, 1, 1, 0, 1};
  engine_->glEnableVertexAttribArray(0);
  engine_->glEnableVertexAttribArray(2);
  engine_->glVertexAttribPointer(0, 2, GL_FLOAT, GL_FALSE, 0, quad);
  engine_->glVertexAttribPointer(2, 2, GL_FLOAT, GL_FALSE, 0, uvs);
  engine_->glDrawArrays(GL_TRIANGLES, 0, 6);
  const auto pixels = read_target();
  EXPECT_EQ(pixels[16 * 32 + 16], 0xff0000ffu);
  EXPECT_EQ(engine_->glGetError(), GL_NO_ERROR);
}

TEST_F(GlcoreTest, Gles1FixedFunctionQuad) {
  make_current_v1();
  engine_->glClearColor(0, 0, 0, 1);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  engine_->glMatrixMode(GL_PROJECTION);
  engine_->glLoadIdentity();
  engine_->glOrthof(-2, 2, -2, 2, -1, 1);
  engine_->glMatrixMode(GL_MODELVIEW);
  engine_->glLoadIdentity();
  engine_->glScalef(2.f, 2.f, 1.f);
  engine_->glColor4f(1.f, 0.f, 1.f, 1.f);
  const float quad[] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  engine_->glEnableClientState(GL_VERTEX_ARRAY);
  engine_->glVertexPointer(2, GL_FLOAT, 0, quad);
  engine_->glDrawArrays(GL_TRIANGLES, 0, 6);
  const auto pixels = read_target();
  // ortho [-2,2] with modelview scale 2 makes the unit quad fill the screen.
  for (std::uint32_t pixel : pixels) EXPECT_EQ(pixel, 0xffff00ffu);
  EXPECT_EQ(engine_->glGetError(), GL_NO_ERROR);
}

TEST_F(GlcoreTest, Gles1MatrixStackPushPop) {
  make_current_v1();
  engine_->glMatrixMode(GL_MODELVIEW);
  engine_->glLoadIdentity();
  engine_->glPushMatrix();
  engine_->glTranslatef(5.f, 0.f, 0.f);
  engine_->glPopMatrix();
  // After pop the matrix must be identity again; over-popping errors.
  engine_->glPopMatrix();
  EXPECT_EQ(engine_->glGetError(), GL_INVALID_OPERATION);
}

TEST_F(GlcoreTest, FramebufferRenderbufferRoundTrip) {
  make_current_v2();
  GLuint fbo = 0, rbo = 0;
  engine_->glGenFramebuffers(1, &fbo);
  engine_->glGenRenderbuffers(1, &rbo);
  engine_->glBindRenderbuffer(GL_RENDERBUFFER, rbo);
  engine_->glRenderbufferStorage(GL_RENDERBUFFER, GL_RGBA8_OES, 16, 16);
  engine_->glBindFramebuffer(GL_FRAMEBUFFER, fbo);
  engine_->glFramebufferRenderbuffer(GL_FRAMEBUFFER, GL_COLOR_ATTACHMENT0,
                                     GL_RENDERBUFFER, rbo);
  EXPECT_EQ(engine_->glCheckFramebufferStatus(GL_FRAMEBUFFER),
            GL_FRAMEBUFFER_COMPLETE);
  engine_->glClearColor(0.f, 1.f, 1.f, 1.f);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  std::vector<std::uint32_t> pixels(16 * 16);
  engine_->glReadPixels(0, 0, 16, 16, GL_RGBA, GL_UNSIGNED_BYTE, pixels.data());
  EXPECT_EQ(pixels[0], 0xffffff00u);  // cyan
  // Unbinding returns rendering to the default target.
  engine_->glBindFramebuffer(GL_FRAMEBUFFER, 0);
  EXPECT_EQ(engine_->resolve_draw_target(), target_);
}

TEST_F(GlcoreTest, IncompleteFramebufferReported) {
  make_current_v2();
  GLuint fbo = 0;
  engine_->glGenFramebuffers(1, &fbo);
  engine_->glBindFramebuffer(GL_FRAMEBUFFER, fbo);
  EXPECT_EQ(engine_->glCheckFramebufferStatus(GL_FRAMEBUFFER),
            GL_FRAMEBUFFER_INCOMPLETE_ATTACHMENT);
}

TEST_F(GlcoreTest, NvFenceLifecycle) {
  make_current_v2();
  GLuint fence = 0;
  engine_->glGenFencesNV(1, &fence);
  EXPECT_EQ(engine_->glIsFenceNV(fence), GL_TRUE);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  engine_->glSetFenceNV(fence, GL_ALL_COMPLETED_NV);
  EXPECT_EQ(engine_->glTestFenceNV(fence), GL_FALSE);
  engine_->glFinishFenceNV(fence);
  EXPECT_EQ(engine_->glTestFenceNV(fence), GL_TRUE);
  engine_->glDeleteFencesNV(1, &fence);
  EXPECT_EQ(engine_->glIsFenceNV(fence), GL_FALSE);
}

TEST_F(GlcoreTest, ErrorsAreStickyUntilRead) {
  make_current_v2();
  engine_->glEnable(0xDEAD);
  engine_->glDepthFunc(0xBEEF);  // second error does not overwrite the first
  EXPECT_EQ(engine_->glGetError(), GL_INVALID_ENUM);
  EXPECT_EQ(engine_->glGetError(), GL_NO_ERROR);
}

TEST_F(GlcoreTest, DrawWithoutProgramRecordsError) {
  make_current_v2();
  const float quad[] = {-1, -1, 1, -1, 1, 1};
  engine_->glEnableVertexAttribArray(0);
  engine_->glVertexAttribPointer(0, 2, GL_FLOAT, GL_FALSE, 0, quad);
  engine_->glDrawArrays(GL_TRIANGLES, 0, 3);
  EXPECT_EQ(engine_->glGetError(), GL_INVALID_OPERATION);
}

TEST_F(GlcoreTest, CurrentContextIsPerThread) {
  make_current_v2();
  // The worker thread has no current context: its GL calls are no-ops and
  // its current_context_id is kNoContext.
  ContextId seen = 999;
  std::thread worker([&] { seen = engine_->current_context_id(); });
  worker.join();
  EXPECT_EQ(seen, kNoContext);
  EXPECT_EQ(engine_->current_context_id(), context_);
}

TEST_F(GlcoreTest, ContextRecordsCreatorThread) {
  make_current_v2();
  EXPECT_EQ(engine_->context_creator(context_), kernel::sys_gettid());
  EXPECT_EQ(engine_->context_version(context_), 2);
}

TEST_F(GlcoreTest, DestroyContextReleasesResources) {
  make_current_v2();
  GLuint tex = 0;
  engine_->glGenTextures(1, &tex);
  engine_->glBindTexture(GL_TEXTURE_2D, tex);
  engine_->glTexImage2D(GL_TEXTURE_2D, 0, GL_RGBA, 4, 4, 0, GL_RGBA,
                        GL_UNSIGNED_BYTE, nullptr);
  ASSERT_TRUE(engine_->make_current(kNoContext, gpu::kNoHandle).is_ok());
  ASSERT_TRUE(engine_->destroy_context(context_).is_ok());
  EXPECT_FALSE(engine_->destroy_context(context_).is_ok());
}

TEST_F(GlcoreTest, GetStringReportsConfig) {
  make_current_v2();
  EXPECT_STREQ(reinterpret_cast<const char*>(engine_->glGetString(GL_VENDOR)),
               "Test");
  const auto* extensions =
      reinterpret_cast<const char*>(engine_->glGetString(GL_EXTENSIONS));
  EXPECT_NE(std::string_view(extensions).find("GL_NV_fence"),
            std::string_view::npos);
}

TEST_F(GlcoreTest, ViewportRestrictsRendering) {
  make_current_v2();
  engine_->glClearColor(0, 0, 0, 1);
  engine_->glClear(GL_COLOR_BUFFER_BIT);
  engine_->glViewport(0, 0, 16, 16);  // top-left quarter (row-0-top space)
  const GLuint prog = build_program(*engine_, kVsSolid, kFsSolid);
  engine_->glUseProgram(prog);
  engine_->glUniformMatrix4fv(0, 1, GL_FALSE, kIdentity);
  engine_->glUniform4f(1, 1, 1, 1, 1);
  const float quad[] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  engine_->glEnableVertexAttribArray(0);
  engine_->glVertexAttribPointer(0, 2, GL_FLOAT, GL_FALSE, 0, quad);
  engine_->glDrawArrays(GL_TRIANGLES, 0, 6);
  engine_->glViewport(0, 0, 32, 32);
  const auto pixels = read_target();
  EXPECT_EQ(pixels[8 * 32 + 8], 0xffffffffu);
  EXPECT_EQ(pixels[24 * 32 + 24], 0xff000000u);
}

}  // namespace
}  // namespace cycada::glcore
