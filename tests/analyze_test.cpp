// cycada-check tests: each checker must (a) run clean on the real tree /
// a well-behaved workload and (b) detect a deliberately seeded violation of
// every contract class (DESIGN.md §6).
#include "analyze/analyze.h"

#include <gtest/gtest.h>

#include <iostream>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/classification.h"
#include "core/diplomat.h"
#include "core/impersonation.h"
#include "glport/system_config.h"
#include "ios_gl/eagl.h"
#include "ios_gl/gles.h"
#include "kernel/kernel.h"
#include "kernel/libc.h"
#include "linker/linker.h"
#include "util/lock_order.h"

namespace cycada::analyze {
namespace {

class AnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::LockOrderGraph::instance().set_recording(false);
    util::LockOrderGraph::instance().reset();
    glport::apply_system_config(glport::SystemConfig::kCycadaIos);
    TlsAudit::instance().reset();
  }

  void TearDown() override {
    util::LockOrderGraph::instance().set_recording(false);
    util::LockOrderGraph::instance().reset();
    TlsAudit::instance().reset();
    // Negative fixtures may leave a graphics-TLS window open on purpose.
    while (core::GraphicsTlsTracker::instance().in_graphics_diplomat()) {
      core::GraphicsTlsTracker::instance().exit_graphics_diplomat();
    }
  }
};

core::DiplomatEntry& make_entry(std::string_view name,
                                core::DiplomatPattern pattern) {
  return core::DiplomatRegistry::instance().entry(name, pattern);
}

// --- Clean tree / clean workload -------------------------------------------

TEST_F(AnalyzeTest, CleanWorkloadProducesNoFindings) {
  util::LockOrderGraph::instance().set_recording(true);
  TlsAudit::instance().install();

  // A miniature iOS-app frame: EAGL drawable + present, all via diplomats
  // into a dlforce-minted replica.
  auto context = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 32, 32);
  ASSERT_TRUE(context.is_ok());
  ios_gl::EAGLContext::set_current_context(*context);
  ios_gl::GLuint rbo = 0;
  ios_gl::glGenRenderbuffers(1, &rbo);
  ASSERT_TRUE((*context)
                  ->renderbuffer_storage_from_drawable(
                      rbo, ios_gl::CAEAGLLayer{32, 32})
                  .is_ok());
  ios_gl::glClearColor(0.f, 0.5f, 0.f, 1.f);
  ios_gl::glClear(glcore::GL_COLOR_BUFFER_BIT);
  EXPECT_NE(ios_gl::glGetString(glcore::GL_VENDOR), nullptr);
  EXPECT_TRUE((*context)->present_renderbuffer(rbo).is_ok());

  Report report;
  check_diplomat_contracts(report);
  check_lock_order(report);
  check_replica_isolation(report);
  check_tls_migration(report);
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(util::LockOrderGraph::instance().edges().empty());
  ios_gl::EAGLContext::clear_current_context();
}

TEST_F(AnalyzeTest, LintRunsCleanOnTheRealTree) {
  Report report;
  ASSERT_TRUE(lint_source_tree(CYCADA_SOURCE_DIR "/src", report));
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
}

TEST_F(AnalyzeTest, ContractCountersBalanceUnderConcurrentLockFreeDispatch) {
  // The registry's lock-free read path must not cost contract accuracy:
  // many threads resolving entries by name (per-thread cache + snapshot
  // probe, no registry mutex) and dispatching with hooks and data-dependent
  // skips must leave every counter exactly balanced, so the checker stays
  // clean and the totals add up.
  core::DiplomatEntry& direct =
      make_entry("concurrent_direct", core::DiplomatPattern::kDirect);
  core::DiplomatEntry& data_dep = make_entry(
      "concurrent_data_dep", core::DiplomatPattern::kDataDependent);

  constexpr int kThreads = 4;
  constexpr int kCalls = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      kernel::Kernel::instance().register_current_thread(
          kernel::Persona::kIos);
      core::DiplomatHooks hooks;
      hooks.prelude = [] {};
      hooks.postlude = [] {};
      core::DiplomatRegistry& registry = core::DiplomatRegistry::instance();
      for (int i = 0; i < kCalls; ++i) {
        core::diplomat_call(
            registry.entry("concurrent_direct", core::DiplomatPattern::kDirect),
            hooks, [] {});
        core::DiplomatEntry& dd = registry.entry(
            "concurrent_data_dep", core::DiplomatPattern::kDataDependent);
        // Data-dependent: odd iterations answer on the iOS side.
        if ((i + t) % 2 == 0) {
          core::diplomat_call(dd, {}, [] {});
        } else {
          core::diplomat_skip(dd);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kCalls;
  EXPECT_EQ(direct.calls.load(), kTotal);
  EXPECT_EQ(direct.contract.preludes.load(), kTotal);
  EXPECT_EQ(direct.contract.postludes.load(), kTotal);
  EXPECT_EQ(direct.contract.domestic_calls.load(), kTotal);
  EXPECT_EQ(data_dep.calls.load(), kTotal);
  EXPECT_EQ(data_dep.contract.domestic_calls.load() +
                data_dep.contract.skipped_calls.load(),
            kTotal);
  EXPECT_EQ(data_dep.contract.skipped_calls.load(), kTotal / 2);

  Report report;
  check_diplomat_contracts(report);
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
}

// --- Diplomat contract violations (seeded) ----------------------------------

TEST_F(AnalyzeTest, DetectsSkippedPostlude) {
  core::DiplomatEntry& entry =
      make_entry("test_prelude_only", core::DiplomatPattern::kDirect);
  core::DiplomatHooks hooks;
  // A prelude that opens the graphics-TLS window with no postlude to close
  // it: both the hook imbalance and the open window must be reported.
  hooks.prelude = [] {
    core::GraphicsTlsTracker::instance().enter_graphics_diplomat();
  };
  core::diplomat_call(entry, hooks, [] {});

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.prelude-postlude-balance"));
  EXPECT_TRUE(report.has_rule("diplomat.open-graphics-window"));
}

TEST_F(AnalyzeTest, DetectsUnbalancedPersonaInDomesticCode) {
  core::DiplomatEntry& entry =
      make_entry("test_unbalanced", core::DiplomatPattern::kDirect);
  core::diplomat_call(entry, {}, [] {
    // Domestic code that switches persona and "forgets" to switch back.
    kernel::sys_set_persona(kernel::Persona::kIos);
  });

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.unbalanced-persona"));
}

TEST_F(AnalyzeTest, DetectsSkipOnNonDataDependentDiplomat) {
  core::DiplomatEntry& entry =
      make_entry("test_direct_skip", core::DiplomatPattern::kDirect);
  core::diplomat_skip(entry);  // a kDirect entry answering on the iOS side

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.illegal-skip"));
}

TEST_F(AnalyzeTest, DetectsCallPathBypassingTheProcedure) {
  core::DiplomatEntry& entry =
      make_entry("test_manual_call", core::DiplomatPattern::kDirect);
  entry.calls.fetch_add(1);  // bumped without diplomat_call/diplomat_skip

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.call-accounting"));
}

TEST_F(AnalyzeTest, DetectsInvokedUnimplementedDiplomat) {
  core::DiplomatEntry& entry =
      make_entry("glShaderBinary", core::DiplomatPattern::kUnimplemented);
  core::diplomat_call(entry, {}, [] {});

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.unimplemented-invoked"));
}

TEST_F(AnalyzeTest, DetectsPatternConflict) {
  (void)make_entry("test_conflict", core::DiplomatPattern::kDirect);
  (void)make_entry("test_conflict", core::DiplomatPattern::kMulti);

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.pattern-conflict"));
}

TEST_F(AnalyzeTest, DetectsClassificationMismatch) {
  // glLogicOp is kUnimplemented in the Table 2 universe; registering and
  // calling it as kDirect must be reported. (The registry is process-
  // lifetime: if another test already registered the entry under its true
  // pattern, the disagreement surfaces as a pattern conflict or an invoked-
  // unimplemented finding instead — any of the three flags the bug.)
  core::DiplomatEntry& entry =
      make_entry("glLogicOp", core::DiplomatPattern::kDirect);
  core::diplomat_call(entry, {}, [] {});

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.classification-mismatch") ||
              report.has_rule("diplomat.pattern-conflict") ||
              report.has_rule("diplomat.unimplemented-invoked"));
}

TEST_F(AnalyzeTest, BatchedWorkloadStaysClean) {
  // A well-behaved batch — classifier-approved entries recorded under a
  // scope and fully flushed — must produce no findings: the checker accepts
  // preludes < domestic_calls for batchable entries (one library prelude
  // per batch) and sees nothing pending at the quiescent point.
  core::DiplomatEntry& entry =
      make_entry("glEnable", core::DiplomatPattern::kDirect);
  ASSERT_TRUE(entry.batchable);
  {
    core::BatchScope scope;
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(core::batch_record(entry, {}, [] {}));
    }
  }
  Report report;
  check_diplomat_contracts(report);
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
}

TEST_F(AnalyzeTest, DetectsIllegalBatchedCall) {
  // Batched evidence on an entry the classifier never approved (and that is
  // not a kMulti coalescer) means a call site smuggled a non-batchable
  // diplomat into a command buffer.
  core::DiplomatEntry& entry =
      make_entry("test_never_batch", core::DiplomatPattern::kDirect);
  ASSERT_FALSE(entry.batchable);
  entry.calls.fetch_add(1);
  entry.contract.domestic_calls.fetch_add(1);
  entry.contract.batched_calls.fetch_add(1);

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("batch.illegal-batched-call"));
}

TEST_F(AnalyzeTest, DetectsUnflushedBatchAtExit) {
  core::DiplomatEntry& entry =
      make_entry("glEnable", core::DiplomatPattern::kDirect);
  core::BatchScope scope;
  ASSERT_TRUE(core::batch_record(entry, {}, [] {}));
  // A quiescent point with a call still queued: the foreign caller believes
  // that GL call happened, but it never replayed.
  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("batch.unflushed-at-exit"));
  // The scope destructor flushes it; a re-check comes back clean.
}

// --- Lock-order violations (seeded) -----------------------------------------

TEST_F(AnalyzeTest, DetectsLockOrderInversion) {
  util::LockOrderGraph::instance().set_recording(true);
  util::OrderedMutex high(util::LockLevel::kMetrics, "test.high");
  util::OrderedMutex low(util::LockLevel::kLinker, "test.low");
  {
    // Wrong way round: level 70 held while acquiring level 10.
    std::lock_guard hold_high(high);
    std::lock_guard hold_low(low);
  }

  Report report;
  check_lock_order(report);
  EXPECT_TRUE(report.has_rule("locks.order-inversion"));
}

TEST_F(AnalyzeTest, DetectsCycleInAcquisitionGraph) {
  util::LockOrderGraph::instance().set_recording(true);
  // Seed the two interleavings through the recording API rather than by
  // really holding the mutexes both ways round — actually deadlock-shaped
  // locking would (correctly) trip TSan's own deadlock detector.
  int low = 0, high = 0;
  using util::lock_detail::note_acquired;
  using util::lock_detail::note_released;
  note_acquired(&low, 10, "test.low", false);
  note_acquired(&high, 70, "test.high", false);  // 10 -> 70, legal
  note_released(&high);
  note_released(&low);
  note_acquired(&high, 70, "test.high", false);
  note_acquired(&low, 10, "test.low", false);  // 70 -> 10 closes the cycle
  note_released(&low);
  note_released(&high);

  Report report;
  check_lock_order(report);
  EXPECT_TRUE(report.has_rule("locks.cycle"));
  EXPECT_TRUE(report.has_rule("locks.order-inversion"));
}

// --- DLR replica isolation violations (seeded) ------------------------------

int g_leaky_shared = 0;  // deliberately shared across "replicas"

class LeakyLib : public linker::LibraryInstance {
 public:
  void* symbol(std::string_view name) override {
    // Bug under test: a function-static-style global that every loaded
    // copy resolves to the same address.
    if (name == "leaky_global") return &g_leaky_shared;
    return nullptr;
  }
  std::vector<std::string> exported_symbols() const override {
    return {"leaky_global"};
  }
};

class IsolatedLib : public linker::LibraryInstance {
 public:
  void* symbol(std::string_view name) override {
    if (name == "own_global") return &own_;
    return nullptr;
  }
  std::vector<std::string> exported_symbols() const override {
    return {"own_global"};
  }

 private:
  int own_ = 0;
};

TEST_F(AnalyzeTest, DetectsSymbolSharedBetweenReplicas) {
  linker::Linker& linker = linker::Linker::instance();
  ASSERT_TRUE(linker
                  .register_image({"libleaky_test.so", {}, [](auto&) {
                                     return std::make_unique<LeakyLib>();
                                   }})
                  .is_ok());
  auto first = linker.dlforce("libleaky_test.so");
  auto second = linker.dlforce("libleaky_test.so");
  ASSERT_TRUE(first.is_ok() && second.is_ok());

  Report report;
  check_replica_isolation(report);
  EXPECT_TRUE(report.has_rule("replica.shared-address"));
}

TEST_F(AnalyzeTest, DetectsDlopenBypassingTheReplicaPath) {
  linker::Linker& linker = linker::Linker::instance();
  ASSERT_TRUE(linker
                  .register_image({"libbypass_test.so", {}, [](auto&) {
                                     return std::make_unique<IsolatedLib>();
                                   }, /*replica_aware=*/true})
                  .is_ok());
  auto replica = linker.dlforce("libbypass_test.so");
  ASSERT_TRUE(replica.is_ok());
  // With a replica live, a plain global-namespace dlopen of the same
  // library aliases replica state — the audited bypass.
  auto bypass = linker.dlopen("libbypass_test.so");
  ASSERT_TRUE(bypass.is_ok());

  Report report;
  check_replica_isolation(report);
  EXPECT_TRUE(report.has_rule("replica.bypass"));
}

class UnresolvableLib : public linker::LibraryInstance {
 public:
  void* symbol(std::string_view) override { return nullptr; }
  std::vector<std::string> exported_symbols() const override {
    return {"phantom"};
  }
};

TEST_F(AnalyzeTest, DetectsUnresolvableExportedSymbol) {
  linker::Linker& linker = linker::Linker::instance();
  ASSERT_TRUE(linker
                  .register_image({"libphantom_test.so", {}, [](auto&) {
                                     return std::make_unique<UnresolvableLib>();
                                   }})
                  .is_ok());
  auto handle = linker.dlopen("libphantom_test.so");
  ASSERT_TRUE(handle.is_ok());

  Report report;
  check_replica_isolation(report);
  EXPECT_TRUE(report.has_rule("replica.null-symbol"));
}

// --- TLS-migration completeness (seeded + positive) -------------------------

TEST_F(AnalyzeTest, DetectsKeyTheTrackerMissed) {
  // The tracker's hooks are uninstalled (as if the 12-line patch were
  // missing), but the independent audit still watches the kernel.
  core::GraphicsTlsTracker::instance().reset();
  TlsAudit::instance().install();

  core::GraphicsTlsTracker::instance().enter_graphics_diplomat();
  const kernel::TlsKey key = kernel::libc::pthread_key_create();
  core::GraphicsTlsTracker::instance().exit_graphics_diplomat();
  ASSERT_NE(key, kernel::kInvalidTlsKey);

  Report report;
  check_tls_migration(report);
  EXPECT_TRUE(report.has_rule("tls.tracker-missed-key"));
  EXPECT_TRUE(report.has_rule("tls.unmigrated-key"));
  kernel::libc::pthread_key_delete(key);
}

TEST_F(AnalyzeTest, MigrationIsCompleteWhenTrackerSeesTheKey) {
  TlsAudit::instance().install();  // tracker installed by the system config

  core::GraphicsTlsTracker::instance().enter_graphics_diplomat();
  const kernel::TlsKey key = kernel::libc::pthread_key_create();
  core::GraphicsTlsTracker::instance().exit_graphics_diplomat();
  ASSERT_NE(key, kernel::kInvalidTlsKey);
  int marker = 0;
  kernel::libc::pthread_setspecific(key, &marker);

  Report report;
  check_tls_migration(report);
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
  // The probing thread's own value survived the impersonation round-trip.
  EXPECT_EQ(kernel::libc::pthread_getspecific(key), &marker);
  kernel::libc::pthread_key_delete(key);
}

// --- Source lint -------------------------------------------------------------

TEST_F(AnalyzeTest, LintFlagsRawSetPersonaOutsideKernel) {
  Report report;
  lint_source_file("src/ios_gl/rogue.cpp",
                   "void f() { kernel::sys_set_persona(p); }\n", report);
  EXPECT_TRUE(report.has_rule("lint.raw-set-persona"));
}

TEST_F(AnalyzeTest, LintAllowsSanctionedSetPersonaSites) {
  Report report;
  lint_source_file("src/kernel/kernel.cpp",
                   "long sys_set_persona(Persona p) { return 0; }\n", report);
  lint_source_file("src/core/diplomat.h",
                   "kernel::sys_set_persona(kernel::Persona::kAndroid);\n",
                   report);
  lint_source_file("src/ios_gl/ok.cpp",
                   "// a comment mentioning sys_set_persona\n"
                   "do_it();  // cycada-lint: allow sys_set_persona here\n",
                   report);
  EXPECT_TRUE(report.clean());
}

TEST_F(AnalyzeTest, LintFlagsRawPthreadKeyInGraphicsCode) {
  Report report;
  lint_source_file("src/glcore/rogue.cpp",
                   "auto k = pthread_key_create();\n", report);
  EXPECT_TRUE(report.has_rule("lint.raw-pthread-key"));

  Report clean;
  lint_source_file("src/glcore/fine.cpp",
                   "auto k = kernel::libc::pthread_key_create();\n", clean);
  EXPECT_TRUE(clean.clean());
}

}  // namespace
}  // namespace cycada::analyze
