// cycada-check tests: each checker must (a) run clean on the real tree /
// a well-behaved workload and (b) detect a deliberately seeded violation of
// every contract class (DESIGN.md §6).
#include "analyze/analyze.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/classification.h"
#include "core/diplomat.h"
#include "core/impersonation.h"
#include "core/session.h"
#include "glport/gl_port.h"
#include "glport/system_config.h"
#include "ios_gl/eagl.h"
#include "ios_gl/gles.h"
#include "kernel/kernel.h"
#include "kernel/libc.h"
#include "linker/linker.h"
#include "trace/metrics.h"
#include "util/lock_order.h"
#include "util/thread_role.h"

namespace cycada::analyze {
namespace {

class AnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::LockOrderGraph::instance().set_recording(false);
    util::LockOrderGraph::instance().reset();
    glport::apply_system_config(glport::SystemConfig::kCycadaIos);
    TlsAudit::instance().reset();
  }

  void TearDown() override {
    util::LockOrderGraph::instance().set_recording(false);
    util::LockOrderGraph::instance().reset();
    TlsAudit::instance().reset();
    // Negative fixtures may leave a graphics-TLS window open on purpose.
    while (core::GraphicsTlsTracker::instance().in_graphics_diplomat()) {
      core::GraphicsTlsTracker::instance().exit_graphics_diplomat();
    }
    // Seeded-misclassification fixtures install amendment overlays; a
    // leaked overlay would fail the clean-tree lint/classify tests.
    core::clear_classification_amendments();
  }
};

core::DiplomatEntry& make_entry(std::string_view name,
                                core::DiplomatPattern pattern) {
  return core::DiplomatRegistry::instance().entry(name, pattern);
}

// --- Clean tree / clean workload -------------------------------------------

TEST_F(AnalyzeTest, CleanWorkloadProducesNoFindings) {
  util::LockOrderGraph::instance().set_recording(true);
  TlsAudit::instance().install();

  // A miniature iOS-app frame: EAGL drawable + present, all via diplomats
  // into a dlforce-minted replica.
  auto context = ios_gl::EAGLContext::init_with_api(
      ios_gl::EAGLRenderingAPI::kOpenGLES2, 32, 32);
  ASSERT_TRUE(context.is_ok());
  ios_gl::EAGLContext::set_current_context(*context);
  ios_gl::GLuint rbo = 0;
  ios_gl::glGenRenderbuffers(1, &rbo);
  ASSERT_TRUE((*context)
                  ->renderbuffer_storage_from_drawable(
                      rbo, ios_gl::CAEAGLLayer{32, 32})
                  .is_ok());
  ios_gl::glClearColor(0.f, 0.5f, 0.f, 1.f);
  ios_gl::glClear(glcore::GL_COLOR_BUFFER_BIT);
  EXPECT_NE(ios_gl::glGetString(glcore::GL_VENDOR), nullptr);
  EXPECT_TRUE((*context)->present_renderbuffer(rbo).is_ok());

  Report report;
  check_diplomat_contracts(report);
  check_lock_order(report);
  check_replica_isolation(report);
  check_tls_migration(report);
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(util::LockOrderGraph::instance().edges().empty());
  ios_gl::EAGLContext::clear_current_context();
}

TEST_F(AnalyzeTest, LintRunsCleanOnTheRealTree) {
  Report report;
  ASSERT_TRUE(lint_source_tree(CYCADA_SOURCE_DIR "/src", report));
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
}

TEST_F(AnalyzeTest, ContractCountersBalanceUnderConcurrentLockFreeDispatch) {
  // The registry's lock-free read path must not cost contract accuracy:
  // many threads resolving entries by name (per-thread cache + snapshot
  // probe, no registry mutex) and dispatching with hooks and data-dependent
  // skips must leave every counter exactly balanced, so the checker stays
  // clean and the totals add up.
  core::DiplomatEntry& direct =
      make_entry("concurrent_direct", core::DiplomatPattern::kDirect);
  core::DiplomatEntry& data_dep = make_entry(
      "concurrent_data_dep", core::DiplomatPattern::kDataDependent);

  constexpr int kThreads = 4;
  constexpr int kCalls = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      kernel::Kernel::instance().register_current_thread(
          kernel::Persona::kIos);
      core::DiplomatHooks hooks;
      hooks.prelude = [] {};
      hooks.postlude = [] {};
      core::DiplomatRegistry& registry = core::DiplomatRegistry::instance();
      for (int i = 0; i < kCalls; ++i) {
        core::diplomat_call(
            registry.entry("concurrent_direct", core::DiplomatPattern::kDirect),
            hooks, [] {});
        core::DiplomatEntry& dd = registry.entry(
            "concurrent_data_dep", core::DiplomatPattern::kDataDependent);
        // Data-dependent: odd iterations answer on the iOS side.
        if ((i + t) % 2 == 0) {
          core::diplomat_call(dd, {}, [] {});
        } else {
          core::diplomat_skip(dd);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kCalls;
  EXPECT_EQ(direct.calls.load(), kTotal);
  EXPECT_EQ(direct.contract.preludes.load(), kTotal);
  EXPECT_EQ(direct.contract.postludes.load(), kTotal);
  EXPECT_EQ(direct.contract.domestic_calls.load(), kTotal);
  EXPECT_EQ(data_dep.calls.load(), kTotal);
  EXPECT_EQ(data_dep.contract.domestic_calls.load() +
                data_dep.contract.skipped_calls.load(),
            kTotal);
  EXPECT_EQ(data_dep.contract.skipped_calls.load(), kTotal / 2);

  Report report;
  check_diplomat_contracts(report);
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
}

// --- Diplomat contract violations (seeded) ----------------------------------

TEST_F(AnalyzeTest, DetectsSkippedPostlude) {
  core::DiplomatEntry& entry =
      make_entry("test_prelude_only", core::DiplomatPattern::kDirect);
  core::DiplomatHooks hooks;
  // A prelude that opens the graphics-TLS window with no postlude to close
  // it: both the hook imbalance and the open window must be reported.
  hooks.prelude = [] {
    core::GraphicsTlsTracker::instance().enter_graphics_diplomat();
  };
  core::diplomat_call(entry, hooks, [] {});

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.prelude-postlude-balance"));
  EXPECT_TRUE(report.has_rule("diplomat.open-graphics-window"));
}

TEST_F(AnalyzeTest, DetectsUnbalancedPersonaInDomesticCode) {
  core::DiplomatEntry& entry =
      make_entry("test_unbalanced", core::DiplomatPattern::kDirect);
  core::diplomat_call(entry, {}, [] {
    // Domestic code that switches persona and "forgets" to switch back.
    kernel::sys_set_persona(kernel::Persona::kIos);
  });

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.unbalanced-persona"));
}

TEST_F(AnalyzeTest, DetectsPersonaCrossingFromTileWorker) {
  trace::Counter& crossings = trace::MetricsRegistry::instance().counter(
      "pipeline.worker.crossings");
  const std::uint64_t before = crossings.value();
  // Seeded violation: a thread wearing the tile-worker role initiates a
  // persona switch (to its own persona — the guard counts the crossing
  // regardless of destination).
  const kernel::Persona current =
      kernel::Kernel::instance().current_thread().persona();
  {
    util::ScopedThreadRole role(util::ThreadRole::kTileWorker);
    kernel::sys_set_persona(current);
  }
  EXPECT_GT(crossings.value(), before);

  Report report;
  check_pipeline_isolation(report);
  EXPECT_TRUE(report.has_rule("pipeline.worker-crossing"));

  // Zeroed again, the checker runs clean (hygiene for single-process runs).
  crossings.set(0);
  Report clean;
  check_pipeline_isolation(clean);
  EXPECT_FALSE(clean.has_rule("pipeline.worker-crossing"));
}

TEST_F(AnalyzeTest, DetectsSkipOnNonDataDependentDiplomat) {
  core::DiplomatEntry& entry =
      make_entry("test_direct_skip", core::DiplomatPattern::kDirect);
  core::diplomat_skip(entry);  // a kDirect entry answering on the iOS side

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.illegal-skip"));
}

TEST_F(AnalyzeTest, DetectsCallPathBypassingTheProcedure) {
  core::DiplomatEntry& entry =
      make_entry("test_manual_call", core::DiplomatPattern::kDirect);
  entry.calls.fetch_add(1);  // bumped without diplomat_call/diplomat_skip

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.call-accounting"));
}

TEST_F(AnalyzeTest, DetectsInvokedUnimplementedDiplomat) {
  core::DiplomatEntry& entry =
      make_entry("glShaderBinary", core::DiplomatPattern::kUnimplemented);
  core::diplomat_call(entry, {}, [] {});

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.unimplemented-invoked"));
}

TEST_F(AnalyzeTest, DetectsPatternConflict) {
  (void)make_entry("test_conflict", core::DiplomatPattern::kDirect);
  (void)make_entry("test_conflict", core::DiplomatPattern::kMulti);

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.pattern-conflict"));
}

TEST_F(AnalyzeTest, DetectsClassificationMismatch) {
  // glLogicOp is kUnimplemented in the Table 2 universe; registering and
  // calling it as kDirect must be reported. (The registry is process-
  // lifetime: if another test already registered the entry under its true
  // pattern, the disagreement surfaces as a pattern conflict or an invoked-
  // unimplemented finding instead — any of the three flags the bug.)
  core::DiplomatEntry& entry =
      make_entry("glLogicOp", core::DiplomatPattern::kDirect);
  core::diplomat_call(entry, {}, [] {});

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("diplomat.classification-mismatch") ||
              report.has_rule("diplomat.pattern-conflict") ||
              report.has_rule("diplomat.unimplemented-invoked"));
}

TEST_F(AnalyzeTest, BatchedWorkloadStaysClean) {
  // A well-behaved batch — classifier-approved entries recorded under a
  // scope and fully flushed — must produce no findings: the checker accepts
  // preludes < domestic_calls for batchable entries (one library prelude
  // per batch) and sees nothing pending at the quiescent point.
  core::DiplomatEntry& entry =
      make_entry("glEnable", core::DiplomatPattern::kDirect);
  ASSERT_TRUE(entry.batchable);
  {
    core::BatchScope scope;
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(core::batch_record(entry, {}, [] {}));
    }
  }
  Report report;
  check_diplomat_contracts(report);
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
}

TEST_F(AnalyzeTest, DetectsIllegalBatchedCall) {
  // Batched evidence on an entry the classifier never approved (and that is
  // not a kMulti coalescer) means a call site smuggled a non-batchable
  // diplomat into a command buffer.
  core::DiplomatEntry& entry =
      make_entry("test_never_batch", core::DiplomatPattern::kDirect);
  ASSERT_FALSE(entry.batchable);
  entry.calls.fetch_add(1);
  entry.contract.domestic_calls.fetch_add(1);
  entry.contract.batched_calls.fetch_add(1);

  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("batch.illegal-batched-call"));
}

TEST_F(AnalyzeTest, DetectsUnflushedBatchAtExit) {
  core::DiplomatEntry& entry =
      make_entry("glEnable", core::DiplomatPattern::kDirect);
  core::BatchScope scope;
  ASSERT_TRUE(core::batch_record(entry, {}, [] {}));
  // A quiescent point with a call still queued: the foreign caller believes
  // that GL call happened, but it never replayed.
  Report report;
  check_diplomat_contracts(report);
  EXPECT_TRUE(report.has_rule("batch.unflushed-at-exit"));
  // The scope destructor flushes it; a re-check comes back clean.
}

// --- Lock-order violations (seeded) -----------------------------------------

TEST_F(AnalyzeTest, DetectsLockOrderInversion) {
  util::LockOrderGraph::instance().set_recording(true);
  util::OrderedMutex high(util::LockLevel::kMetrics, "test.high");
  util::OrderedMutex low(util::LockLevel::kLinker, "test.low");
  {
    // Wrong way round: level 70 held while acquiring level 10.
    std::lock_guard hold_high(high);
    std::lock_guard hold_low(low);
  }

  Report report;
  check_lock_order(report);
  EXPECT_TRUE(report.has_rule("locks.order-inversion"));
}

TEST_F(AnalyzeTest, DetectsCycleInAcquisitionGraph) {
  util::LockOrderGraph::instance().set_recording(true);
  // Seed the two interleavings through the recording API rather than by
  // really holding the mutexes both ways round — actually deadlock-shaped
  // locking would (correctly) trip TSan's own deadlock detector.
  int low = 0, high = 0;
  using util::lock_detail::note_acquired;
  using util::lock_detail::note_released;
  note_acquired(&low, 10, "test.low", false);
  note_acquired(&high, 70, "test.high", false);  // 10 -> 70, legal
  note_released(&high);
  note_released(&low);
  note_acquired(&high, 70, "test.high", false);
  note_acquired(&low, 10, "test.low", false);  // 70 -> 10 closes the cycle
  note_released(&low);
  note_released(&high);

  Report report;
  check_lock_order(report);
  EXPECT_TRUE(report.has_rule("locks.cycle"));
  EXPECT_TRUE(report.has_rule("locks.order-inversion"));
}

// --- DLR replica isolation violations (seeded) ------------------------------

int g_leaky_shared = 0;  // deliberately shared across "replicas"

class LeakyLib : public linker::LibraryInstance {
 public:
  void* symbol(std::string_view name) override {
    // Bug under test: a function-static-style global that every loaded
    // copy resolves to the same address.
    if (name == "leaky_global") return &g_leaky_shared;
    return nullptr;
  }
  std::vector<std::string> exported_symbols() const override {
    return {"leaky_global"};
  }
};

class IsolatedLib : public linker::LibraryInstance {
 public:
  void* symbol(std::string_view name) override {
    if (name == "own_global") return &own_;
    return nullptr;
  }
  std::vector<std::string> exported_symbols() const override {
    return {"own_global"};
  }

 private:
  int own_ = 0;
};

TEST_F(AnalyzeTest, DetectsSymbolSharedBetweenReplicas) {
  linker::Linker& linker = linker::Linker::instance();
  ASSERT_TRUE(linker
                  .register_image({"libleaky_test.so", {}, [](auto&) {
                                     return std::make_unique<LeakyLib>();
                                   }})
                  .is_ok());
  auto first = linker.dlforce("libleaky_test.so");
  auto second = linker.dlforce("libleaky_test.so");
  ASSERT_TRUE(first.is_ok() && second.is_ok());

  Report report;
  check_replica_isolation(report);
  EXPECT_TRUE(report.has_rule("replica.shared-address"));
}

TEST_F(AnalyzeTest, DetectsDlopenBypassingTheReplicaPath) {
  linker::Linker& linker = linker::Linker::instance();
  ASSERT_TRUE(linker
                  .register_image({"libbypass_test.so", {}, [](auto&) {
                                     return std::make_unique<IsolatedLib>();
                                   }, /*replica_aware=*/true})
                  .is_ok());
  auto replica = linker.dlforce("libbypass_test.so");
  ASSERT_TRUE(replica.is_ok());
  // With a replica live, a plain global-namespace dlopen of the same
  // library aliases replica state — the audited bypass.
  auto bypass = linker.dlopen("libbypass_test.so");
  ASSERT_TRUE(bypass.is_ok());

  Report report;
  check_replica_isolation(report);
  EXPECT_TRUE(report.has_rule("replica.bypass"));
}

class UnresolvableLib : public linker::LibraryInstance {
 public:
  void* symbol(std::string_view) override { return nullptr; }
  std::vector<std::string> exported_symbols() const override {
    return {"phantom"};
  }
};

TEST_F(AnalyzeTest, DetectsUnresolvableExportedSymbol) {
  linker::Linker& linker = linker::Linker::instance();
  ASSERT_TRUE(linker
                  .register_image({"libphantom_test.so", {}, [](auto&) {
                                     return std::make_unique<UnresolvableLib>();
                                   }})
                  .is_ok());
  auto handle = linker.dlopen("libphantom_test.so");
  ASSERT_TRUE(handle.is_ok());

  Report report;
  check_replica_isolation(report);
  EXPECT_TRUE(report.has_rule("replica.null-symbol"));
}

// --- TLS-migration completeness (seeded + positive) -------------------------

TEST_F(AnalyzeTest, DetectsKeyTheTrackerMissed) {
  // The tracker's hooks are uninstalled (as if the 12-line patch were
  // missing), but the independent audit still watches the kernel.
  core::GraphicsTlsTracker::instance().reset();
  TlsAudit::instance().install();

  core::GraphicsTlsTracker::instance().enter_graphics_diplomat();
  const kernel::TlsKey key = kernel::libc::pthread_key_create();
  core::GraphicsTlsTracker::instance().exit_graphics_diplomat();
  ASSERT_NE(key, kernel::kInvalidTlsKey);

  Report report;
  check_tls_migration(report);
  EXPECT_TRUE(report.has_rule("tls.tracker-missed-key"));
  EXPECT_TRUE(report.has_rule("tls.unmigrated-key"));
  kernel::libc::pthread_key_delete(key);
}

TEST_F(AnalyzeTest, MigrationIsCompleteWhenTrackerSeesTheKey) {
  TlsAudit::instance().install();  // tracker installed by the system config

  core::GraphicsTlsTracker::instance().enter_graphics_diplomat();
  const kernel::TlsKey key = kernel::libc::pthread_key_create();
  core::GraphicsTlsTracker::instance().exit_graphics_diplomat();
  ASSERT_NE(key, kernel::kInvalidTlsKey);
  int marker = 0;
  kernel::libc::pthread_setspecific(key, &marker);

  Report report;
  check_tls_migration(report);
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
  // The probing thread's own value survived the impersonation round-trip.
  EXPECT_EQ(kernel::libc::pthread_getspecific(key), &marker);
  kernel::libc::pthread_key_delete(key);
}

// --- Source lint -------------------------------------------------------------

TEST_F(AnalyzeTest, LintFlagsRawSetPersonaOutsideKernel) {
  Report report;
  lint_source_file("src/ios_gl/rogue.cpp",
                   "void f() { kernel::sys_set_persona(p); }\n", report);
  EXPECT_TRUE(report.has_rule("lint.raw-set-persona"));
}

TEST_F(AnalyzeTest, LintAllowsSanctionedSetPersonaSites) {
  Report report;
  lint_source_file("src/kernel/kernel.cpp",
                   "long sys_set_persona(Persona p) { return 0; }\n", report);
  lint_source_file("src/core/diplomat.h",
                   "kernel::sys_set_persona(kernel::Persona::kAndroid);\n",
                   report);
  lint_source_file("src/ios_gl/ok.cpp",
                   "// a comment mentioning sys_set_persona\n"
                   "do_it();  // cycada-lint: allow(sys_set_persona here)\n",
                   report);
  EXPECT_TRUE(report.clean());
}

TEST_F(AnalyzeTest, LintFlagsRawPthreadKeyInGraphicsCode) {
  Report report;
  lint_source_file("src/glcore/rogue.cpp",
                   "auto k = pthread_key_create();\n", report);
  EXPECT_TRUE(report.has_rule("lint.raw-pthread-key"));

  Report clean;
  lint_source_file("src/glcore/fine.cpp",
                   "auto k = kernel::libc::pthread_key_create();\n", clean);
  EXPECT_TRUE(clean.clean());
}

TEST_F(AnalyzeTest, LintFlagsBareAllowMarkerAndKeepsChecking) {
  // A bare marker is a finding AND fails to suppress the violation it sat
  // next to — both rules fire on the same line.
  Report report;
  lint_source_file("src/ios_gl/rogue.cpp",
                   "kernel::sys_set_persona(p);  // cycada-lint: allow\n",
                   report);
  EXPECT_TRUE(report.has_rule("lint.allow-without-reason"));
  EXPECT_TRUE(report.has_rule("lint.raw-set-persona"));

  Report reasoned;
  lint_source_file(
      "src/ios_gl/ok.cpp",
      "kernel::sys_set_persona(p);  // cycada-lint: allow(fixture helper)\n",
      reasoned);
  EXPECT_TRUE(reasoned.clean());
}

TEST_F(AnalyzeTest, LintFlagsRefCaptureInBatchableDispatchSite) {
  const std::string site =
      "void glClearColor(GLclampf r, GLclampf g, GLclampf b, GLclampf a) {\n"
      "  IOS_GL(glClearColor);\n"
      "  dispatch(entry, [&](glcore::GlesEngine& gl) {\n"
      "    gl.glClearColor(r, g, b, a);\n"
      "  });\n"
      "}\n";
  Report report;
  lint_source_file("src/ios_gl/rogue.cpp", site, report);
  EXPECT_TRUE(report.has_rule("lint.batch-capture-by-ref"));

  // The same shape on a non-batchable diplomat (glGetIntegerv is a
  // readback) is the immediate path working as designed.
  Report readback;
  lint_source_file("src/ios_gl/fine.cpp",
                   "void glGetIntegerv(GLenum pname, GLint* params) {\n"
                   "  IOS_GL(glGetIntegerv);\n"
                   "  dispatch(entry, [&](glcore::GlesEngine& gl) {\n"
                   "    gl.glGetIntegerv(pname, params);\n"
                   "  });\n"
                   "}\n",
                   readback);
  EXPECT_TRUE(readback.clean());

  // Outside ios_gl/ the rule never applies.
  Report elsewhere;
  lint_source_file("src/glcore/engine.cpp", site, elsewhere);
  EXPECT_TRUE(elsewhere.clean());
}

TEST_F(AnalyzeTest, LintFlagsUnboundedWaitInSupervisedDomains) {
  // A bare .wait( in a watchdog-supervised directory can hang forever on a
  // stalled producer — the watchdog can flag the scope but nothing inside
  // the process can unwedge the waiter.
  Report report;
  lint_source_file("src/gpu/rogue.cpp",
                   "void f() { done_cv_.wait(lock); }\n", report);
  EXPECT_TRUE(report.has_rule("watchdog.unbounded-wait"));

  Report egl;
  lint_source_file("src/android_gl/rogue.cpp",
                   "frame_cv_.wait(lock, [&] { return ready_; });\n", egl);
  EXPECT_TRUE(egl.has_rule("watchdog.unbounded-wait"));

  // The deadline-sliced form stays responsive and is the sanctioned idiom.
  Report sliced;
  lint_source_file(
      "src/gpu/fine.cpp",
      "done_cv_.wait_for(lock, std::chrono::milliseconds(5));\n", sliced);
  EXPECT_TRUE(sliced.clean());

  // Idle parking (a worker owing nothing to anyone) is legitimate when the
  // line says why.
  Report parked;
  lint_source_file("src/gpu/fine.cpp",
                   "work_cv_.wait(lock);  "
                   "// cycada-lint: allow(idle park, owes no frame)\n",
                   parked);
  EXPECT_TRUE(parked.clean());

  // Outside the supervised directories the rule never applies.
  Report elsewhere;
  lint_source_file("src/core/rogue.cpp",
                   "void f() { done_cv_.wait(lock); }\n", elsewhere);
  EXPECT_TRUE(elsewhere.clean());
}

// --- Classification universe (Table 2) ---------------------------------------

TEST(ClassificationTest, Table2CountsMatchThePaper) {
  const core::Table2Counts counts = core::count_table2();
  EXPECT_EQ(counts.direct, 312);
  EXPECT_EQ(counts.indirect, 15);
  EXPECT_EQ(counts.data_dependent, 5);
  EXPECT_EQ(counts.multi, 2);
  EXPECT_EQ(counts.unimplemented, 10);
  EXPECT_EQ(counts.total(), 344);
}

TEST(ClassificationTest, FunctionsWithPatternRoundTrip) {
  int total = 0;
  for (const core::DiplomatPattern pattern :
       {core::DiplomatPattern::kDirect, core::DiplomatPattern::kIndirect,
        core::DiplomatPattern::kDataDependent, core::DiplomatPattern::kMulti,
        core::DiplomatPattern::kUnimplemented}) {
    for (const std::string& name : core::functions_with_pattern(pattern)) {
      EXPECT_EQ(core::classify_ios_gl_function(name), pattern) << name;
      ++total;
    }
  }
  EXPECT_EQ(total, 344);
}

TEST(ClassificationTest, EveryBatchableNameClassifiesDirect) {
  int batchable = 0;
  for (const core::DiplomatPattern pattern :
       {core::DiplomatPattern::kDirect, core::DiplomatPattern::kIndirect,
        core::DiplomatPattern::kDataDependent, core::DiplomatPattern::kMulti,
        core::DiplomatPattern::kUnimplemented}) {
    for (const std::string& name : core::functions_with_pattern(pattern)) {
      if (!core::classify_ios_gl_batchable(name)) continue;
      EXPECT_EQ(core::classify_ios_gl_function(name),
                core::DiplomatPattern::kDirect)
          << name;
      ++batchable;
    }
  }
  EXPECT_GT(batchable, 50);
}

// --- Classification amendments -----------------------------------------------

TEST_F(AnalyzeTest, AmendmentParseAcceptsHeaderDirectivesAndComments) {
  auto parsed = core::parse_classification_amendments(
      std::string(core::kClassificationAmendmentsHeader) +
      "\n# a comment\n"
      "batchable glBlendColor  # corpus evidence\n"
      "batchable glSampleCoverage\n");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->batchable,
            (std::vector<std::string>{"glBlendColor", "glSampleCoverage"}));
}

TEST_F(AnalyzeTest, AmendmentParseRejectsBadInput) {
  // Missing header.
  EXPECT_FALSE(
      core::parse_classification_amendments("batchable glBlendColor\n")
          .is_ok());
  // Empty file.
  EXPECT_FALSE(core::parse_classification_amendments("").is_ok());
  const std::string header(core::kClassificationAmendmentsHeader);
  // Unknown directive.
  EXPECT_FALSE(
      core::parse_classification_amendments(header + "\nskip glEnable\n")
          .is_ok());
  // Trailing garbage after the name.
  EXPECT_FALSE(core::parse_classification_amendments(
                   header + "\nbatchable glEnable glDisable\n")
                   .is_ok());
  // Only direct diplomats may be amended: glGetString is data-dependent.
  EXPECT_FALSE(
      core::parse_classification_amendments(header +
                                            "\nbatchable glGetString\n")
          .is_ok());
}

TEST_F(AnalyzeTest, AmendmentOverlayWidensTheBatchableSet) {
  // glBlendColor is direct but conservatively out of the hand table.
  EXPECT_FALSE(core::classify_ios_gl_batchable("glBlendColor"));
  core::set_classification_amendments({{"glBlendColor"}});
  EXPECT_TRUE(core::classify_ios_gl_batchable("glBlendColor"));
  EXPECT_TRUE(core::classification_amended("glBlendColor"));
  // Hand-table entries are untouched, and the overlay cannot widen
  // non-direct patterns (classify_ios_gl_batchable gates on the pattern).
  EXPECT_TRUE(core::classify_ios_gl_batchable("glClearColor"));
  EXPECT_FALSE(core::classification_amended("glClearColor"));
  core::clear_classification_amendments();
  EXPECT_FALSE(core::classify_ios_gl_batchable("glBlendColor"));
}

// --- Classification prover ---------------------------------------------------

std::string real_gles_source() {
  std::ifstream file(CYCADA_SOURCE_DIR "/src/ios_gl/gles.cpp");
  EXPECT_TRUE(file.is_open());
  std::ostringstream contents;
  contents << file.rdbuf();
  return contents.str();
}

trace::ParsedTrace synthetic_trace(
    const std::vector<trace::CytDef>& defs,
    const std::vector<trace::CytRecord>& events) {
  trace::ParsedTrace trace;
  std::memset(&trace.header, 0, sizeof(trace.header));
  std::uint32_t id = 1;
  for (const trace::CytDef& def : defs) trace.defs[id++] = def;
  trace.records = events;
  return trace;
}

trace::CytRecord synthetic_event(std::uint32_t id, trace::CytEventKind kind,
                                 std::uint8_t flags) {
  trace::CytRecord event = trace::cyt_zero_record();
  event.type = static_cast<std::uint8_t>(trace::CytRecordType::kEvent);
  event.kind = static_cast<std::uint8_t>(kind);
  event.flags = flags;
  event.id = id;
  return event;
}

TEST_F(AnalyzeTest, ClassifyScannerExtractsSiteFacts) {
  const std::vector<ClassifySiteFacts> sites = scan_ios_gl_sites(
      "src/ios_gl/gles.cpp",
      "#define IOS_GL(name) resolve(name)\n"
      "\n"
      "void glEnable(GLenum cap) {\n"
      "  IOS_GL(glEnable);\n"
      "  dispatch(entry, [=](glcore::GlesEngine& gl) { gl.glEnable(cap); },\n"
      "           cap);\n"
      "}\n"
      "\n"
      "void glGetIntegerv(GLenum pname, GLint* params) {\n"
      "  IOS_GL(glGetIntegerv);\n"
      "  dispatch(entry, [&](glcore::GlesEngine& gl) {\n"
      "    gl.glGetIntegerv(pname, params);\n"
      "  });\n"
      "}\n"
      "\n"
      "void glSetFenceAPPLE(GLuint fence) {\n"
      "  IOS_GL(glSetFenceAPPLE);\n"
      "  dispatch(entry, [&](glcore::GlesEngine& gl) {\n"
      "    gl.glSetFenceNV(fence);\n"
      "  });\n"
      "}\n");
  ASSERT_EQ(sites.size(), 3u);  // the #define is not a site

  EXPECT_EQ(sites[0].name, "glEnable");
  EXPECT_EQ(sites[0].declared, core::DiplomatPattern::kDirect);
  EXPECT_TRUE(sites[0].void_return);
  EXPECT_FALSE(sites[0].pointer_args);
  EXPECT_TRUE(sites[0].capture_by_value);
  EXPECT_FALSE(sites[0].capture_by_ref);
  EXPECT_FALSE(sites[0].redirect);

  EXPECT_EQ(sites[1].name, "glGetIntegerv");
  EXPECT_TRUE(sites[1].pointer_args);
  EXPECT_TRUE(sites[1].capture_by_ref);
  EXPECT_FALSE(sites[1].capture_by_value);

  EXPECT_EQ(sites[2].name, "glSetFenceAPPLE");
  EXPECT_EQ(sites[2].declared, core::DiplomatPattern::kIndirect);
  EXPECT_TRUE(sites[2].redirect);  // gl.glSetFenceNV under glSetFenceAPPLE
}

TEST_F(AnalyzeTest, ClassifyRunsCleanOnTheRealTree) {
  Report report;
  const ClassifyAudit audit = check_classification(
      "src/ios_gl/gles.cpp", real_gles_source(), {}, report);
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());
  EXPECT_GE(audit.sites.size(), 111u);
}

TEST_F(AnalyzeTest, ClassifyFlagsSignatureMismatches) {
  // Four seeded shapes, one finding each: a skip on a non-data-dependent
  // site, an engine redirect under kDirect, a site outside the Table 2
  // universe, and a live site on a kUnimplemented name.
  Report report;
  check_classification(
      "src/ios_gl/rogue.cpp",
      "void glDrawArrays(GLenum mode, GLint first, GLsizei count) {\n"
      "  IOS_GL(glDrawArrays);\n"
      "  diplomat_skip(entry);\n"
      "}\n"
      "\n"
      "void glFinish() {\n"
      "  IOS_GL(glFinish);\n"
      "  dispatch(entry, [&](glcore::GlesEngine& gl) { gl.glFlush(); });\n"
      "}\n"
      "\n"
      "void glNotInTheUniverse(GLenum cap) {\n"
      "  IOS_GL(glNotInTheUniverse);\n"
      "  dispatch(entry, [=](glcore::GlesEngine& gl) {});\n"
      "}\n"
      "\n"
      "void glLogicOp(GLenum opcode) {\n"
      "  IOS_GL(glLogicOp);\n"
      "  dispatch(entry, [=](glcore::GlesEngine& gl) {});\n"
      "}\n",
      {}, report);
  EXPECT_EQ(report.by_checker("classify").size(), 4u);
  EXPECT_TRUE(report.has_rule("classify.signature-mismatch"));
}

TEST_F(AnalyzeTest, ClassifyFlagsBatchableUnsafeSite) {
  // glClearColor is classifier-batchable; a reference-capturing, non-void
  // site contradicts everything batching assumes about it.
  Report report;
  check_classification(
      "src/ios_gl/rogue.cpp",
      "GLenum glClearColor(GLclampf r, GLclampf g, GLclampf b, GLclampf a) "
      "{\n"
      "  IOS_GL(glClearColor);\n"
      "  dispatch(entry, [&](glcore::GlesEngine& gl) {\n"
      "    gl.glClearColor(r, g, b, a);\n"
      "  });\n"
      "  return glcore::GL_NO_ERROR;\n"
      "}\n",
      {}, report);
  EXPECT_TRUE(report.has_rule("classify.batchable-unsafe"));
}

TEST_F(AnalyzeTest, ClassifyFlagsCorpusContradictions) {
  // A corpus whose defs/events disagree with this build's classifier:
  // glClear recorded as batchable=false, a batched crossing on
  // glBlendColor (classifier-rejected), and a non-void observed call on
  // batchable glClearColor.
  const trace::ParsedTrace trace = synthetic_trace(
      {{"glClear", static_cast<std::uint8_t>(core::DiplomatPattern::kDirect),
        false},
       {"glBlendColor",
        static_cast<std::uint8_t>(core::DiplomatPattern::kDirect), false},
       {"glClearColor",
        static_cast<std::uint8_t>(core::DiplomatPattern::kDirect), true}},
      {synthetic_event(1, trace::CytEventKind::kCall,
                       trace::kCytFlagVoidReturn | trace::kCytFlagScalarArgs),
       synthetic_event(2, trace::CytEventKind::kBatchedCall,
                       trace::kCytFlagVoidReturn | trace::kCytFlagScalarArgs),
       synthetic_event(3, trace::CytEventKind::kCall,
                       trace::kCytFlagScalarArgs)});
  Report report;
  check_classification("src/ios_gl/gles.cpp", real_gles_source(), {&trace},
                       report);
  const auto findings = report.by_checker("classify");
  EXPECT_EQ(findings.size(), 3u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "classify.corpus-contradiction") << finding.subject;
  }
}

TEST_F(AnalyzeTest, SeededMisclassificationCaughtByBothSources) {
  // Seed a false batchable bit: amend glDrawArrays (direct, but its real
  // site is the immediate [&] path — draws consume client-array pointers).
  core::set_classification_amendments({{"glDrawArrays"}});

  // Source A: the static scanner catches it against the real tree.
  Report static_report;
  check_classification("src/ios_gl/gles.cpp", real_gles_source(), {},
                       static_report);
  bool static_caught = false;
  for (const Finding& finding : static_report.by_checker("classify")) {
    if (finding.rule == "classify.batchable-unsafe" &&
        finding.message.find("glDrawArrays") != std::string::npos) {
      static_caught = true;
    }
  }
  EXPECT_TRUE(static_caught);

  // The batch-capture source lint is a second, independent static catch.
  Report lint_report;
  lint_source_file("src/ios_gl/gles.cpp", real_gles_source(), lint_report);
  EXPECT_TRUE(lint_report.has_rule("lint.batch-capture-by-ref"));

  // Source B: a corpus recorded by an honest build (batchable=false, as
  // the capture layer wrote it) contradicts the seeded classifier.
  const trace::ParsedTrace trace = synthetic_trace(
      {{"glDrawArrays",
        static_cast<std::uint8_t>(core::DiplomatPattern::kDirect), false}},
      {synthetic_event(1, trace::CytEventKind::kCall,
                       trace::kCytFlagVoidReturn)});
  Report corpus_report;
  check_classification("src/ios_gl/gles.cpp", real_gles_source(), {&trace},
                       corpus_report);
  EXPECT_TRUE(corpus_report.has_rule("classify.corpus-contradiction"));

  core::clear_classification_amendments();
}

TEST_F(AnalyzeTest, ClassifyProvesAmendmentsOverTheGoldenCorpus) {
  // The committed golden corpus + the real dispatch sites must agree on
  // the two deliberately-conservative diplomats and prove them by replay;
  // glDetachShader stays below the confidence threshold.
  auto passmark =
      trace::read_cyt(CYCADA_SOURCE_DIR "/tests/data/golden_passmark.cyt");
  ASSERT_TRUE(passmark.is_ok()) << passmark.status().to_string();

  Report report;
  const ClassifyAudit audit = check_classification(
      "src/ios_gl/gles.cpp", real_gles_source(), {&*passmark}, report);
  if (!report.clean()) report.print(std::cerr);
  EXPECT_TRUE(report.clean());

  std::vector<std::string> proposed;
  for (const AmendmentProposal& proposal : audit.proposals) {
    EXPECT_TRUE(proposal.replay_proved) << proposal.name;
    EXPECT_GE(proposal.corpus_occurrences, 8u) << proposal.name;
    proposed.push_back(proposal.name);
  }
  EXPECT_EQ(proposed,
            (std::vector<std::string>{"glBlendColor", "glSampleCoverage"}));

  // The prover's replay proof restores the pre-existing overlay.
  EXPECT_FALSE(core::classify_ios_gl_batchable("glBlendColor"));

  // The rendered file round-trips through the runtime loader's parser.
  const std::string rendered =
      render_classification_amendments(audit.proposals);
  auto parsed = core::parse_classification_amendments(rendered);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->batchable, proposed);
}

// --- Session isolation (docs/SESSIONS.md) ----------------------------------

TEST_F(AnalyzeTest, DetectsCrossSessionAccess) {
  core::SessionRegistry& registry = core::SessionRegistry::instance();
  registry.clear_cross_leak_evidence();
  auto a = registry.create("leak-a");
  auto b = registry.create("leak-b");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());

  // Materialize session B's kernel, then touch it from a thread bound to
  // session A — the exact bug class the rule exists for.
  kernel::Kernel* b_kernel = nullptr;
  {
    core::SessionScope scope(**b);
    b_kernel = &kernel::Kernel::instance();
  }
  {
    core::SessionScope scope(**a);
    b_kernel->register_current_thread(kernel::Persona::kIos);
  }

  Report report;
  check_session_isolation(report);
  EXPECT_TRUE(report.has_rule("session.cross-leak"));

  registry.clear_cross_leak_evidence();
  Report clean;
  check_session_isolation(clean);
  EXPECT_FALSE(clean.has_rule("session.cross-leak"));

  registry.destroy(*a);
  registry.destroy(*b);
}

TEST_F(AnalyzeTest, SessionBoundWorkloadStaysClean) {
  core::SessionRegistry& registry = core::SessionRegistry::instance();
  registry.clear_cross_leak_evidence();
  auto session = registry.create("clean-fleet");
  ASSERT_TRUE(session.is_ok());
  {
    // A well-behaved fleet member: binds, registers with its *own* kernel,
    // renders against its own facet stack.
    core::SessionScope scope(**session);
    kernel::Kernel::instance().register_current_thread(kernel::Persona::kIos);
    core::GraphicsTlsTracker::instance().install();
    auto port = glport::make_ios_port();
    ASSERT_TRUE(port->init(32, 32, 1).is_ok());
    port->begin_frame();
    port->clear_color(0.2f, 0.4f, 0.6f, 1.0f);
    port->clear(glcore::GL_COLOR_BUFFER_BIT);
    ASSERT_TRUE(port->present().is_ok());
  }
  Report report;
  check_session_isolation(report);
  EXPECT_FALSE(report.has_rule("session.cross-leak"));
  registry.destroy(*session);
}

}  // namespace
}  // namespace cycada::analyze
