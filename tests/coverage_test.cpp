// Remaining-gap coverage: texture units, line/point rasterization,
// read-only surface locks, small kernel syscalls, JS syntax edges.
#include <gtest/gtest.h>

#include "glcore/engine.h"
#include "glport/system_config.h"
#include "gpu/device.h"
#include "iosurface/iosurface.h"
#include "jsvm/engine.h"
#include "kernel/kernel.h"

namespace cycada {
namespace {

TEST(RasterPrimitivesTest, HorizontalLineDrawsContiguousPixels) {
  gpu::GpuDevice::instance().reset();
  auto& dev = gpu::GpuDevice::instance();
  const auto target = dev.create_target(16, 16, false);
  dev.submit_clear(target, std::nullopt, true, {0, 0, 0, 1}, false, 1.f);
  std::vector<gpu::ShadedVertex> line(2);
  line[0].clip_pos = {-0.9f, 0.f, 0.f, 1.f};
  line[1].clip_pos = {0.9f, 0.f, 0.f, 1.f};
  line[0].color = line[1].color = {1.f, 1.f, 1.f, 1.f};
  dev.submit_draw(target, {}, gpu::PrimitiveKind::kLines, line);
  std::vector<std::uint32_t> pixels(256);
  ASSERT_TRUE(
      dev.read_pixels(target, 0, 0, 16, 16, pixels.data(), 16).is_ok());
  int lit = 0;
  for (int x = 1; x < 15; ++x) lit += pixels[8 * 16 + x] == 0xffffffffu;
  EXPECT_GE(lit, 12);  // a contiguous midline run
  EXPECT_EQ(pixels[0], 0xff000000u);
}

TEST(RasterPrimitivesTest, PointSizeControlsFootprint) {
  gpu::GpuDevice::instance().reset();
  auto& dev = gpu::GpuDevice::instance();
  const auto target = dev.create_target(16, 16, false);
  dev.submit_clear(target, std::nullopt, true, {0, 0, 0, 1}, false, 1.f);
  std::vector<gpu::ShadedVertex> point(1);
  point[0].clip_pos = {0.f, 0.f, 0.f, 1.f};
  point[0].color = {1.f, 0.f, 0.f, 1.f};
  gpu::RasterState state;
  state.point_size = 5.f;
  dev.submit_draw(target, state, gpu::PrimitiveKind::kPoints, point);
  dev.flush();
  const auto stats = dev.stats();
  EXPECT_EQ(stats.fragments_shaded, 25u);  // 5x5 square
}

TEST(TextureUnitsTest, SamplerSelectsUnitOne) {
  kernel::Kernel::instance().reset();
  gpu::GpuDevice::instance().reset();
  glcore::GlesEngine engine({});
  const auto target = gpu::GpuDevice::instance().create_target(8, 8, false);
  const auto ctx = engine.create_context(2);
  ASSERT_TRUE(engine.make_current(ctx, target).is_ok());
  engine.glViewport(0, 0, 8, 8);

  // Unit 0: red texture. Unit 1: green texture.
  glcore::GLuint textures[2] = {};
  engine.glGenTextures(2, textures);
  const std::uint32_t red = 0xff0000ffu, green = 0xff00ff00u;
  engine.glActiveTexture(glcore::GL_TEXTURE0);
  engine.glBindTexture(glcore::GL_TEXTURE_2D, textures[0]);
  engine.glTexImage2D(glcore::GL_TEXTURE_2D, 0, glcore::GL_RGBA, 1, 1, 0,
                      glcore::GL_RGBA, glcore::GL_UNSIGNED_BYTE, &red);
  engine.glActiveTexture(glcore::GL_TEXTURE0 + 1);
  engine.glBindTexture(glcore::GL_TEXTURE_2D, textures[1]);
  engine.glTexImage2D(glcore::GL_TEXTURE_2D, 0, glcore::GL_RGBA, 1, 1, 0,
                      glcore::GL_RGBA, glcore::GL_UNSIGNED_BYTE, &green);

  const char* vs =
      "attribute vec4 a_position; attribute vec2 a_texcoord; uniform mat4 "
      "u_mvp; varying vec2 v_uv;"
      "void main() { gl_Position = u_mvp * a_position; v_uv = a_texcoord; }";
  const char* fs =
      "uniform sampler2D u_tex; varying vec2 v_uv;"
      "void main() { gl_FragColor = texture2D(u_tex, v_uv); }";
  const glcore::GLuint vsh = engine.glCreateShader(glcore::GL_VERTEX_SHADER);
  const glcore::GLuint fsh = engine.glCreateShader(glcore::GL_FRAGMENT_SHADER);
  engine.glShaderSource(vsh, 1, &vs, nullptr);
  engine.glShaderSource(fsh, 1, &fs, nullptr);
  engine.glCompileShader(vsh);
  engine.glCompileShader(fsh);
  const glcore::GLuint prog = engine.glCreateProgram();
  engine.glAttachShader(prog, vsh);
  engine.glAttachShader(prog, fsh);
  engine.glLinkProgram(prog);
  engine.glUseProgram(prog);
  const float identity[16] = {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1};
  engine.glUniformMatrix4fv(0, 1, glcore::GL_FALSE, identity);
  engine.glUniform1i(2, 1);  // sample unit 1

  const float quad[] = {-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1};
  const float uvs[] = {0, 0, 1, 0, 1, 1, 0, 0, 1, 1, 0, 1};
  engine.glEnableVertexAttribArray(0);
  engine.glEnableVertexAttribArray(2);
  engine.glVertexAttribPointer(0, 2, glcore::GL_FLOAT, glcore::GL_FALSE, 0,
                               quad);
  engine.glVertexAttribPointer(2, 2, glcore::GL_FLOAT, glcore::GL_FALSE, 0,
                               uvs);
  engine.glDrawArrays(glcore::GL_TRIANGLES, 0, 6);
  std::uint32_t center = 0;
  engine.glReadPixels(4, 4, 1, 1, glcore::GL_RGBA, glcore::GL_UNSIGNED_BYTE,
                      &center);
  EXPECT_EQ(center, green);
}

TEST(IOSurfaceReadOnlyTest, ReadOnlyLockForbidsNothingButIsHonored) {
  glport::apply_system_config(glport::SystemConfig::kCycadaIos);
  auto surface = iosurface::IOSurfaceCreate({.width = 4, .height = 4});
  ASSERT_NE(surface, nullptr);
  ASSERT_TRUE(
      iosurface::IOSurfaceLock(surface, iosurface::kIOSurfaceLockReadOnly)
          .is_ok());
  EXPECT_NE(iosurface::IOSurfaceGetBaseAddress(surface), nullptr);
  ASSERT_TRUE(iosurface::IOSurfaceUnlock(surface).is_ok());
}

TEST(KernelMiscTest, GetPidAndYield) {
  kernel::Kernel::instance().reset();
  kernel::Kernel::instance().register_current_thread(
      kernel::Persona::kAndroid);
  auto& kernel = kernel::Kernel::instance();
  EXPECT_EQ(kernel.syscall(kernel::Sys::kGetPid), kernel.main_tid());
  EXPECT_EQ(kernel.syscall(kernel::Sys::kYield), 0);
}

TEST(JsSyntaxEdgeTest, CommentsHexAndEscapes) {
  jsvm::JsEngine engine{jsvm::JsOptions{}};
  auto r = engine.run(
      "// line comment\n"
      "/* block\n comment */\n"
      "var x = 0xff;            // hex literal\n"
      "var s = \"a\\tb\\n\";    // escapes\n"
      "x + s.length;");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_DOUBLE_EQ(r->to_number(), 259.0);
}

TEST(JsSyntaxEdgeTest, NestedTernaryAndChainedLogic) {
  jsvm::JsEngine engine{jsvm::JsOptions{}};
  auto r = engine.run(
      "var a = 5;"
      "var b = a > 3 ? (a > 10 ? 1 : 2) : 3;"
      "var c = (a > 1 && a < 10) || a == 0 ? 100 : 200;"
      "b * 1000 + c;");
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r->to_number(), 2100.0);
}

TEST(JsSyntaxEdgeTest, WhitespaceAndSemicolonTolerance) {
  jsvm::JsEngine engine{jsvm::JsOptions{}};
  auto r = engine.run("  ;;; var x = 1 ;; x + 1 ;  ");
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r->to_number(), 2.0);
}

}  // namespace
}  // namespace cycada
